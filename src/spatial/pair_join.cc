#include "spatial/pair_join.h"

#include <cmath>
#include <unordered_map>

#include "spatial/kdbsp_tree.h"

namespace gamedb::spatial {

void NestedLoopPairs(const std::vector<PointEntry>& points, float max_dist,
                     const PairCallback& cb) {
  float d2 = max_dist * max_dist;
  for (size_t i = 0; i < points.size(); ++i) {
    for (size_t j = i + 1; j < points.size(); ++j) {
      if (points[i].pos.DistanceSquaredTo(points[j].pos) <= d2) {
        if (points[i].id.Raw() < points[j].id.Raw()) {
          cb(points[i], points[j]);
        } else {
          cb(points[j], points[i]);
        }
      }
    }
  }
}

namespace {

struct Cell {
  int32_t x, y, z;
  bool operator==(const Cell& o) const {
    return x == o.x && y == o.y && z == o.z;
  }
};
struct CellHash {
  size_t operator()(const Cell& c) const {
    uint64_t h = static_cast<uint32_t>(c.x) * 0x9E3779B97F4A7C15ull;
    h ^= static_cast<uint32_t>(c.y) * 0xC2B2AE3D27D4EB4Full;
    h ^= static_cast<uint32_t>(c.z) * 0x165667B19E3779F9ull;
    return static_cast<size_t>(h);
  }
};

void EmitOrdered(const PointEntry& a, const PointEntry& b,
                 const PairCallback& cb) {
  if (a.id.Raw() < b.id.Raw()) {
    cb(a, b);
  } else {
    cb(b, a);
  }
}

}  // namespace

void GridPairs(const std::vector<PointEntry>& points, float max_dist,
               const PairCallback& cb) {
  GAMEDB_CHECK(max_dist > 0.0f);
  float inv = 1.0f / max_dist;
  float d2 = max_dist * max_dist;
  std::unordered_map<Cell, std::vector<uint32_t>, CellHash> grid;
  grid.reserve(points.size());
  auto cell_of = [&](const Vec3& p) {
    return Cell{static_cast<int32_t>(std::floor(p.x * inv)),
                static_cast<int32_t>(std::floor(p.y * inv)),
                static_cast<int32_t>(std::floor(p.z * inv))};
  };
  for (uint32_t i = 0; i < points.size(); ++i) {
    grid[cell_of(points[i].pos)].push_back(i);
  }

  // Forward half-neighborhood: (0,0,0) handled as i<j within the cell, plus
  // the 13 lexicographically-positive neighbor offsets.
  static constexpr int kOffsets[13][3] = {
      {1, 0, 0},  {0, 1, 0},   {0, 0, 1},  {1, 1, 0},  {1, -1, 0},
      {1, 0, 1},  {1, 0, -1},  {0, 1, 1},  {0, 1, -1}, {1, 1, 1},
      {1, 1, -1}, {1, -1, 1},  {1, -1, -1}};

  for (const auto& [cell, members] : grid) {
    // Within-cell pairs.
    for (size_t a = 0; a < members.size(); ++a) {
      for (size_t b = a + 1; b < members.size(); ++b) {
        const PointEntry& pa = points[members[a]];
        const PointEntry& pb = points[members[b]];
        if (pa.pos.DistanceSquaredTo(pb.pos) <= d2) EmitOrdered(pa, pb, cb);
      }
    }
    // Cross-cell pairs against forward neighbors.
    for (const auto& off : kOffsets) {
      auto it = grid.find(Cell{cell.x + off[0], cell.y + off[1],
                               cell.z + off[2]});
      if (it == grid.end()) continue;
      for (uint32_t ia : members) {
        for (uint32_t ib : it->second) {
          const PointEntry& pa = points[ia];
          const PointEntry& pb = points[ib];
          if (pa.pos.DistanceSquaredTo(pb.pos) <= d2) EmitOrdered(pa, pb, cb);
        }
      }
    }
  }
}

void IndexPairs(const SpatialIndex& index,
                const std::vector<PointEntry>& points, float max_dist,
                const PairCallback& cb) {
  float d2 = max_dist * max_dist;
  std::unordered_map<uint64_t, const PointEntry*> by_id;
  by_id.reserve(points.size());
  for (const auto& p : points) by_id.emplace(p.id.Raw(), &p);
  for (const auto& p : points) {
    index.QueryRadius(p.pos, max_dist, [&](EntityId other, const Aabb&) {
      // Emit each unordered pair once: only when p is the smaller id.
      if (p.id.Raw() >= other.Raw()) return;
      auto it = by_id.find(other.Raw());
      GAMEDB_DCHECK(it != by_id.end());
      const PointEntry& q = *it->second;
      if (p.pos.DistanceSquaredTo(q.pos) <= d2) cb(p, q);
    });
  }
}

const char* PairAlgoName(PairAlgo algo) {
  switch (algo) {
    case PairAlgo::kNestedLoop:
      return "nested_loop";
    case PairAlgo::kGrid:
      return "grid";
    case PairAlgo::kIndexed:
      return "indexed";
  }
  return "?";
}

void RunPairs(PairAlgo algo, const std::vector<PointEntry>& points,
              float max_dist, const PairCallback& cb) {
  switch (algo) {
    case PairAlgo::kNestedLoop:
      NestedLoopPairs(points, max_dist, cb);
      return;
    case PairAlgo::kGrid:
      GridPairs(points, max_dist, cb);
      return;
    case PairAlgo::kIndexed: {
      KdBspTree tree;
      for (const PointEntry& p : points) {
        tree.Insert(p.id, Aabb::FromPoint(p.pos));
      }
      IndexPairs(tree, points, max_dist, cb);
      return;
    }
  }
}

}  // namespace gamedb::spatial
