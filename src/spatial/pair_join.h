#pragma once

/// \file pair_join.h
/// Proximity self-joins: enumerate all pairs of entities within a given
/// distance. This is the computation the tutorial's performance section is
/// about — a designer's "every object interacts with every object" script is
/// the nested-loop plan (Ω(n²)); the grid and index joins are the database
/// answer. E1 sweeps these against each other.

#include <functional>
#include <vector>

#include "common/geometry.h"
#include "core/entity.h"
#include "spatial/spatial_index.h"

namespace gamedb::spatial {

/// A point participant in a proximity join.
struct PointEntry {
  EntityId id;
  Vec3 pos;
};

/// Callback receiving each unordered pair exactly once (a.id < b.id by raw
/// id; ordering within the callback arguments follows that rule).
using PairCallback =
    std::function<void(const PointEntry& a, const PointEntry& b)>;

/// O(n²) nested-loop join: the unindexed baseline.
void NestedLoopPairs(const std::vector<PointEntry>& points, float max_dist,
                     const PairCallback& cb);

/// Grid-hash join with cell size = max_dist: each point is compared against
/// points in its own and forward-neighbor cells only, so each pair is
/// produced exactly once. O(n · k) for uniform data.
void GridPairs(const std::vector<PointEntry>& points, float max_dist,
               const PairCallback& cb);

/// Join through an already-populated SpatialIndex: radius query per point,
/// deduplicated by id order. The index must contain exactly the points
/// passed here (same ids), as degenerate boxes.
void IndexPairs(const SpatialIndex& index,
                const std::vector<PointEntry>& points, float max_dist,
                const PairCallback& cb);

/// The three physical pair-join algorithms above, as a value the planner
/// can choose among (planner/plan.h PairJoinPlan).
enum class PairAlgo : uint8_t { kNestedLoop, kGrid, kIndexed };

const char* PairAlgoName(PairAlgo algo);

/// Runs the chosen algorithm over `points`. kIndexed builds (and warms) a
/// throwaway KD-BSP tree over the points — callers that already maintain an
/// index should use IndexPairs directly.
void RunPairs(PairAlgo algo, const std::vector<PointEntry>& points,
              float max_dist, const PairCallback& cb);

}  // namespace gamedb::spatial
