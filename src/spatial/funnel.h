#pragma once

/// \file funnel.h
/// String pulling over a portal corridor (the "simple stupid funnel
/// algorithm"). Given the sequence of portals a navmesh path crosses, it
/// produces the taut polyline from start to goal — the reason navmesh paths
/// look natural while grid paths staircase.

#include <utility>
#include <vector>

#include "common/geometry.h"

namespace gamedb::spatial {

/// One corridor portal: `left`/`right` as seen walking along the corridor.
struct Portal {
  Vec2 left;
  Vec2 right;
};

/// Computes the taut path from `start` to `goal` through `portals` (in
/// crossing order). Returns at least {start, goal}. Degenerate portals
/// (left == right) are handled (they become mandatory waypoints).
std::vector<Vec2> StringPull(const Vec2& start, const Vec2& goal,
                             const std::vector<Portal>& portals);

/// Total length of a polyline.
float PathLength(const std::vector<Vec2>& pts);

}  // namespace gamedb::spatial
