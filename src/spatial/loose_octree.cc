#include "spatial/loose_octree.h"

namespace gamedb::spatial {

LooseOctree::LooseOctree(LooseOctreeOptions options) : options_(options) {
  GAMEDB_CHECK(!options_.world_bounds.Empty());
  Node root;
  root.cell = options_.world_bounds;
  root.depth = 0;
  nodes_.push_back(std::move(root));
}

int32_t LooseOctree::Place(const Aabb& box) {
  int32_t current = 0;
  while (true) {
    Node& node = nodes_[current];
    if (node.depth >= options_.max_depth) return current;
    // Choose the child octant by box center.
    Vec3 center = node.cell.Center();
    Vec3 c = box.Center();
    int octant = (c.x >= center.x ? 1 : 0) | (c.y >= center.y ? 2 : 0) |
                 (c.z >= center.z ? 4 : 0);
    Aabb child_cell{
        Vec3(octant & 1 ? center.x : node.cell.min.x,
             octant & 2 ? center.y : node.cell.min.y,
             octant & 4 ? center.z : node.cell.min.z),
        Vec3(octant & 1 ? node.cell.max.x : center.x,
             octant & 2 ? node.cell.max.y : center.y,
             octant & 4 ? node.cell.max.z : center.z)};
    // The child's loose bounds are the child cell inflated by half its
    // extent; descend only if the box still fits there.
    Vec3 half = child_cell.Extent() * 0.5f;
    Aabb loose{child_cell.min - half, child_cell.max + half};
    if (!loose.Contains(box)) return current;

    int32_t child = node.children[octant];
    if (child < 0) {
      uint32_t depth = node.depth + 1;
      if (!free_nodes_.empty()) {
        child = free_nodes_.back();
        free_nodes_.pop_back();
        nodes_[child] = Node();
      } else {
        child = static_cast<int32_t>(nodes_.size());
        nodes_.emplace_back();
      }
      // Re-fetch: emplace_back may have invalidated `node`.
      nodes_[child].cell = child_cell;
      nodes_[child].depth = depth;
      nodes_[child].parent = current;
      nodes_[current].children[octant] = child;
    }
    current = child;
  }
}

void LooseOctree::Insert(EntityId e, const Aabb& box) {
  GAMEDB_CHECK(where_.find(e) == where_.end());
  GAMEDB_CHECK(!box.Empty());
  int32_t node = Place(box);
  nodes_[node].items.emplace_back(e, box);
  where_.emplace(e, node);
}

void LooseOctree::EraseFromNode(int32_t node_index, EntityId e) {
  auto& items = nodes_[node_index].items;
  for (size_t i = 0; i < items.size(); ++i) {
    if (items[i].first == e) {
      items[i] = items.back();
      items.pop_back();
      return;
    }
  }
  GAMEDB_CHECK(false);  // where_ said the item was here
}

void LooseOctree::MaybePrune(int32_t node_index) {
  // Free leaf nodes that became empty, walking up while possible.
  while (node_index > 0) {
    Node& node = nodes_[node_index];
    if (!node.items.empty()) return;
    for (int32_t c : node.children) {
      if (c >= 0) return;
    }
    int32_t parent = node.parent;
    Node& p = nodes_[parent];
    for (int32_t& c : p.children) {
      if (c == node_index) {
        c = -1;
        break;
      }
    }
    free_nodes_.push_back(node_index);
    node_index = parent;
  }
}

bool LooseOctree::Remove(EntityId e) {
  auto it = where_.find(e);
  if (it == where_.end()) return false;
  int32_t node = it->second;
  EraseFromNode(node, e);
  where_.erase(it);
  MaybePrune(node);
  return true;
}

void LooseOctree::Update(EntityId e, const Aabb& box) {
  auto it = where_.find(e);
  GAMEDB_CHECK(it != where_.end());
  int32_t target = Place(box);
  if (target == it->second) {
    // Same node: update the stored box in place.
    for (auto& [id, b] : nodes_[target].items) {
      if (id == e) {
        b = box;
        return;
      }
    }
    GAMEDB_CHECK(false);
  }
  int32_t old_node = it->second;
  EraseFromNode(old_node, e);
  nodes_[target].items.emplace_back(e, box);
  it->second = target;
  MaybePrune(old_node);
}

void LooseOctree::QueryNode(int32_t node_index, const Aabb& range,
                            const QueryCallback& cb) const {
  const Node& node = nodes_[node_index];
  // The root also holds entries that don't fit the world bounds, so it is
  // never rejected by the loose-bounds test.
  if (node_index != 0 && !node.LooseBounds().Intersects(range)) return;
  for (const auto& [id, box] : node.items) {
    if (box.Intersects(range)) cb(id, box);
  }
  for (int32_t c : node.children) {
    if (c >= 0) QueryNode(c, range, cb);
  }
}

void LooseOctree::QueryRange(const Aabb& range, const QueryCallback& cb) const {
  QueryNode(0, range, cb);
}

void LooseOctree::Clear() {
  nodes_.clear();
  free_nodes_.clear();
  where_.clear();
  Node root;
  root.cell = options_.world_bounds;
  nodes_.push_back(std::move(root));
}

}  // namespace gamedb::spatial
