#pragma once

/// \file grid_astar.h
/// A* over a GridMap: the per-cell pathfinding baseline that navigation
/// meshes improve on (fewer search nodes, smoother paths). E3 compares the
/// two on identical maps.

#include <cstdint>
#include <utility>
#include <vector>

#include "spatial/grid_map.h"

namespace gamedb::spatial {

/// Cost model and constraints for grid pathfinding.
struct GridPathOptions {
  /// Allow 8-connected movement (diagonals cost sqrt(2); corner cutting
  /// through blocked cells is disallowed).
  bool diagonal = true;
  /// Cells with any of these flags are treated as blocked.
  uint8_t avoid_flags = 0;
  /// Cost multiplier applied to cells flagged kNavDanger (1 = indifferent,
  /// >1 = prefer detours around danger).
  float danger_multiplier = 1.0f;
};

/// Result of a grid A* search.
struct GridPathResult {
  bool found = false;
  /// Cells from start to goal inclusive.
  std::vector<std::pair<int, int>> cells;
  /// World-space waypoints (cell centers).
  std::vector<Vec2> waypoints;
  /// Total path cost under the cost model.
  float cost = 0.0f;
  /// Nodes expanded (search effort; the E3 metric).
  size_t expanded = 0;
};

/// Shortest path from `start` to `goal` (cell coordinates). Fails (found ==
/// false) when either endpoint is blocked/out of bounds or no path exists.
GridPathResult FindGridPath(const GridMap& map, std::pair<int, int> start,
                            std::pair<int, int> goal,
                            const GridPathOptions& options = {});

}  // namespace gamedb::spatial
