#pragma once

/// \file navmesh.h
/// Navigation mesh: convex polygons + portal adjacency, with the semantic
/// designer annotations the tutorial highlights (danger / cover / hiding /
/// defensible and per-polygon cost multipliers). Pathfinding is A* over the
/// polygon graph followed by funnel string pulling.

#include <cstdint>
#include <vector>

#include "common/geometry.h"
#include "common/status.h"
#include "spatial/funnel.h"
#include "spatial/grid_map.h"  // NavFlags

namespace gamedb::spatial {

/// One convex polygon of the mesh (vertices CCW in the XZ plane).
struct NavPoly {
  std::vector<Vec2> verts;
  uint8_t flags = kNavWalkable;
  /// Designer-tuned traversal cost multiplier (mud, stairs, ...).
  float cost_multiplier = 1.0f;
  Vec2 centroid;
  float area = 0.0f;

  /// Point-in-convex-polygon test (boundary-inclusive).
  bool Contains(const Vec2& p) const;
};

/// Pathfinding cost model over annotations.
struct NavPathOptions {
  /// Polygons with any of these flags are not traversable.
  uint8_t avoid_flags = 0;
  /// Extra multiplier on kNavDanger polygons (>1 prefers detours).
  float danger_multiplier = 1.0f;
  /// Run funnel smoothing (off = portal-midpoint polyline).
  bool smooth = true;
};

/// A navmesh path.
struct NavPathResult {
  bool found = false;
  /// Polygon ids crossed, start polygon first.
  std::vector<uint32_t> corridor;
  /// World waypoints from start to goal.
  std::vector<Vec2> waypoints;
  /// A* cost (annotation-weighted distance).
  float cost = 0.0f;
  /// Polygons expanded by the search (E3 metric; compare to grid cells).
  size_t expanded = 0;
};

/// Polygon soup + adjacency. Build by hand (AddPolygon/Connect) or from a
/// GridMap via BuildNavMesh (navmesh_builder.h).
class NavMesh {
 public:
  /// Adds a convex CCW polygon; returns its id. Aborts on polygons with
  /// fewer than 3 vertices.
  uint32_t AddPolygon(std::vector<Vec2> verts, uint8_t flags = kNavWalkable,
                      float cost_multiplier = 1.0f);

  /// Declares that polygons `a` and `b` share the portal segment [p0, p1]
  /// (bidirectional). Fails on unknown ids or a == b.
  Status Connect(uint32_t a, uint32_t b, const Vec2& p0, const Vec2& p1);

  size_t PolygonCount() const { return polys_.size(); }
  const NavPoly& polygon(uint32_t id) const { return polys_[id]; }

  /// Id of a polygon containing `p`, or -1. Linear scan (meshes are small
  /// relative to the worlds they cover — that is their point).
  int32_t FindPolygon(const Vec2& p) const;

  /// Neighbors of a polygon: (neighbor id, portal endpoints).
  struct Edge {
    uint32_t to;
    Vec2 p0, p1;
  };
  const std::vector<Edge>& Neighbors(uint32_t id) const {
    return adjacency_[id];
  }

  /// Point-to-point path. Start/goal outside the mesh fail with found=false.
  NavPathResult FindPath(const Vec2& start, const Vec2& goal,
                         const NavPathOptions& options = {}) const;

  /// Polygons within `radius` of `p` carrying all `required_flags` —
  /// the "query the annotations" API (find cover near me, hiding spots...).
  std::vector<uint32_t> FindAnnotated(const Vec2& p, float radius,
                                      uint8_t required_flags) const;

 private:
  float EffectiveMultiplier(const NavPoly& poly,
                            const NavPathOptions& options) const;

  std::vector<NavPoly> polys_;
  std::vector<std::vector<Edge>> adjacency_;
};

}  // namespace gamedb::spatial
