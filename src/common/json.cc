#include "common/json.h"

#include <cctype>
#include <cstdlib>

namespace gamedb::json {

namespace {

/// Recursive-descent reader over the raw document bytes.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue v;
    GAMEDB_RETURN_NOT_OK(ParseValue(&v, /*depth=*/0));
    SkipWs();
    if (pos_ != text_.size()) return Fail("trailing garbage");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Fail(const std::string& what) const {
    return Status::ParseError("json: " + what + " at offset " +
                              std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    SkipWs();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->str);
      case 't':
      case 'f':
        return ParseKeyword(out);
      case 'n':
        return ParseKeyword(out);
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber(out);
        return Fail("unexpected character");
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    out->kind = JsonValue::Kind::kObject;
    ++pos_;  // '{'
    SkipWs();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key");
      }
      std::string key;
      GAMEDB_RETURN_NOT_OK(ParseString(&key));
      SkipWs();
      if (!Consume(':')) return Fail("expected ':'");
      JsonValue v;
      GAMEDB_RETURN_NOT_OK(ParseValue(&v, depth + 1));
      out->members.emplace_back(std::move(key), std::move(v));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::OK();
      return Fail("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    out->kind = JsonValue::Kind::kArray;
    ++pos_;  // '['
    SkipWs();
    if (Consume(']')) return Status::OK();
    while (true) {
      JsonValue v;
      GAMEDB_RETURN_NOT_OK(ParseValue(&v, depth + 1));
      out->elements.push_back(std::move(v));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::OK();
      return Fail("expected ',' or ']'");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // opening '"'
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return Status::OK();
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) break;
        char esc = text_[pos_];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'n': out->push_back('\n'); break;
          case 'r': out->push_back('\r'); break;
          case 't': out->push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 >= text_.size()) return Fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 1; i <= 4; ++i) {
              char h = text_[pos_ + static_cast<size_t>(i)];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Fail("bad \\u escape");
              }
            }
            pos_ += 4;
            // The emitters only escape control characters; decode the BMP
            // code point to UTF-8 and leave surrogate pairs unsupported.
            if (code < 0x80) {
              out->push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out->push_back(static_cast<char>(0xC0 | (code >> 6)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out->push_back(static_cast<char>(0xE0 | (code >> 12)));
              out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Fail("bad escape");
        }
        ++pos_;
        continue;
      }
      out->push_back(c);
      ++pos_;
    }
    return Fail("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    std::string tok = text_.substr(start, pos_ - start);
    char* end = nullptr;
    double v = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0' || tok.empty()) {
      return Fail("bad number");
    }
    out->kind = JsonValue::Kind::kNumber;
    out->number = v;
    return Status::OK();
  }

  Status ParseKeyword(JsonValue* out) {
    auto match = [&](const char* kw) {
      size_t n = std::string(kw).size();
      if (text_.compare(pos_, n, kw) == 0) {
        pos_ += n;
        return true;
      }
      return false;
    };
    if (match("true")) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      return Status::OK();
    }
    if (match("false")) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = false;
      return Status::OK();
    }
    if (match("null")) {
      out->kind = JsonValue::Kind::kNull;
      return Status::OK();
    }
    return Fail("bad keyword");
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<JsonValue> ParseJson(const std::string& text) {
  return Parser(text).Parse();
}

}  // namespace gamedb::json
