#pragma once

/// \file string_util.h
/// Small string helpers used by the script lexer, XML parser and reporting.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace gamedb {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Removes ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// True if `s` starts with / ends with the given prefix/suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Lower-cases ASCII letters.
std::string ToLower(std::string_view s);

/// printf-style formatting into a std::string.
std::string StringFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins items with a separator.
std::string Join(const std::vector<std::string>& items, std::string_view sep);

/// FNV-1a 64-bit hash of a byte string (stable across platforms; used for
/// name interning and content fingerprints).
uint64_t Fnv1a64(std::string_view s);

/// Parses a double / int64; returns false on malformed input or trailing
/// garbage.
bool ParseDouble(std::string_view s, double* out);
bool ParseInt64(std::string_view s, int64_t* out);

/// Parses an unsigned decimal uint64 (full 0..UINT64_MAX range); returns
/// false on malformed input, any sign character, overflow, or trailing
/// garbage.
bool ParseUint64(std::string_view s, uint64_t* out);

}  // namespace gamedb
