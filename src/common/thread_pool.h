#pragma once

/// \file thread_pool.h
/// Fixed-size worker pool used by the state-effect executor and the script
/// host to run query and apply phases in parallel (the tutorial's GPU-join
/// analogy, realized on CPU threads — see docs/ARCHITECTURE.md "Simulated
/// substitutions").

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/macros.h"

namespace gamedb {

/// A simple FIFO thread pool. Tasks must not throw.
///
/// Completion is tracked per *batch* through TaskGroup, so overlapping
/// ParallelFor calls issued from different threads wait only on their own
/// tasks, and a task may itself submit nested work and wait for it: every
/// Wait variant "helps" by running queued tasks from the calling thread
/// instead of blocking while work it may depend on sits in the queue.
class ThreadPool {
 public:
  /// Completion tracker for one batch of tasks. A group must outlive every
  /// task submitted through it (stack-allocate it around Submit + Wait).
  class TaskGroup {
   public:
    TaskGroup() = default;
    GAMEDB_DISALLOW_COPY(TaskGroup);

   private:
    friend class ThreadPool;
    size_t pending_ = 0;  // guarded by the owning pool's mu_
    std::condition_variable done_cv_;
  };

  /// Starts `num_threads` workers (>= 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  GAMEDB_DISALLOW_COPY(ThreadPool);

  /// Enqueues a task for execution on some worker.
  void Submit(std::function<void()> task);

  /// Enqueues a task whose completion is tracked by `group` (as well as by
  /// the pool-wide counter Wait() observes).
  void Submit(TaskGroup* group, std::function<void()> task);

  /// Blocks until every submitted task has finished executing. Runs queued
  /// tasks on the calling thread while waiting, so calling from inside a
  /// pool task is safe; for such in-task callers the caller's own stacked
  /// tasks — and those of other tasks simultaneously blocked in Wait() —
  /// are excluded from the drain condition (they cannot finish first by
  /// definition; mutually-waiting tasks release each other instead of
  /// deadlocking). External callers always observe the full drain.
  void Wait();

  /// Blocks until every task submitted through `group` has finished. Unlike
  /// Wait(), unrelated in-flight batches do not delay the return. Safe to
  /// call from inside a pool task (the worker helps instead of deadlocking).
  void Wait(TaskGroup& group);

  /// Partitions [0, n) into roughly equal chunks and runs
  /// `fn(begin, end)` for each chunk on the pool, blocking until done.
  /// Runs inline when n is small or the pool has one thread.
  void ParallelFor(size_t n, const std::function<void(size_t, size_t)>& fn);

  /// Like ParallelFor but also passes the chunk index (< num_threads()),
  /// which callers use as a shard id for contention-free accumulation.
  /// Chunking is deterministic for a given (n, num_threads()): chunk i
  /// always covers the same contiguous range, so concatenating per-chunk
  /// results in chunk order yields a thread-count-independent item order.
  void ParallelForChunks(
      size_t n, const std::function<void(size_t, size_t, size_t)>& fn);

  size_t num_threads() const { return threads_.size(); }

 private:
  struct Task {
    std::function<void()> fn;
    TaskGroup* group;  // nullptr for untracked Submit
  };

  void WorkerLoop();

  /// Pops the front task and runs it with `lock` released, then performs
  /// completion bookkeeping. Precondition: lock held, queue non-empty.
  void RunOneQueued(std::unique_lock<std::mutex>& lock);

  /// Runs an already-dequeued task with `lock` released and performs
  /// completion bookkeeping. Precondition: lock held.
  void RunTask(Task task, std::unique_lock<std::mutex>& lock);

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::deque<Task> queue_;
  size_t in_flight_ = 0;  // queued + executing, across all groups
  // Summed executing-depth of threads currently blocked inside Wait() or
  // Wait(TaskGroup&); their stacked tasks cannot finish first and are
  // excluded from in-task global waiters' drain condition.
  size_t waiting_depth_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace gamedb
