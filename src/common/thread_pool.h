#pragma once

/// \file thread_pool.h
/// Fixed-size worker pool used by the state-effect executor to run query and
/// apply phases in parallel (the tutorial's GPU-join analogy, realized on CPU
/// threads — see docs/ARCHITECTURE.md "Simulated substitutions").

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/macros.h"

namespace gamedb {

/// A simple FIFO thread pool. Tasks must not throw.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (>= 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  GAMEDB_DISALLOW_COPY(ThreadPool);

  /// Enqueues a task for execution on some worker.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void Wait();

  /// Partitions [0, n) into roughly equal chunks and runs
  /// `fn(begin, end)` for each chunk on the pool, blocking until done.
  /// Runs inline when n is small or the pool has one thread.
  void ParallelFor(size_t n, const std::function<void(size_t, size_t)>& fn);

  /// Like ParallelFor but also passes the chunk index (< num_threads()),
  /// which callers use as a shard id for contention-free accumulation.
  /// Chunking is deterministic for a given (n, num_threads()).
  void ParallelForChunks(
      size_t n, const std::function<void(size_t, size_t, size_t)>& fn);

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace gamedb
