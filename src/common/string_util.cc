#include "common/string_util.h"

#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cctype>

namespace gamedb {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string StringFormat(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

std::string Join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += sep;
    out += items[i];
  }
  return out;
}

uint64_t Fnv1a64(std::string_view s) {
  uint64_t h = 14695981039346656037ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

bool ParseDouble(std::string_view s, double* out) {
  if (s.empty()) return false;
  std::string buf(s);
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

bool ParseInt64(std::string_view s, int64_t* out) {
  if (s.empty()) return false;
  std::string buf(s);
  char* end = nullptr;
  errno = 0;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE) return false;  // would silently clamp to LLONG_MAX/MIN
  if (end != buf.c_str() + buf.size()) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

bool ParseUint64(std::string_view s, uint64_t* out) {
  if (s.empty()) return false;
  // strtoull silently wraps negative input; reject any sign outright.
  if (s[0] == '-' || s[0] == '+') return false;
  std::string buf(s);
  char* end = nullptr;
  errno = 0;
  unsigned long long v = std::strtoull(buf.c_str(), &end, 10);
  if (errno == ERANGE) return false;
  if (end != buf.c_str() + buf.size()) return false;
  *out = static_cast<uint64_t>(v);
  return true;
}

}  // namespace gamedb
