#pragma once

/// \file logging.h
/// Minimal leveled logger. Logging is for humans debugging the engine;
/// nothing in gamedb's logic depends on log output.

#include <sstream>
#include <string>

namespace gamedb {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global minimum level that is emitted (default: kWarn so tests
/// and benchmarks stay quiet).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log line; emits to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace gamedb

#define GAMEDB_LOG(level)                                              \
  if (static_cast<int>(::gamedb::LogLevel::level) <                    \
      static_cast<int>(::gamedb::GetLogLevel())) {                     \
  } else                                                               \
    ::gamedb::internal::LogMessage(::gamedb::LogLevel::level, __FILE__, \
                                   __LINE__)
