#pragma once

/// \file status.h
/// RocksDB-style Status and Result<T> types. All fallible public operations
/// in gamedb return Status (or Result<T> when they produce a value); the
/// library does not throw exceptions across API boundaries.
///
/// Paper: no section of its own — `common/` is the engineering substrate
/// (error model, coding, geometry, threading) every reproduced technique
/// stands on.

#include <string>
#include <string_view>
#include <utility>
#include <variant>

#include "common/macros.h"

namespace gamedb {

/// Machine-inspectable category of a failure.
enum class StatusCode : int {
  kOk = 0,
  kNotFound = 1,
  kInvalidArgument = 2,
  kCorruption = 3,
  kNotSupported = 4,
  kIOError = 5,
  kBusy = 6,          // lock could not be acquired
  kAborted = 7,       // transaction aborted (deadlock avoidance, validation)
  kOutOfRange = 8,
  kResourceExhausted = 9,  // e.g. script fuel exhausted
  kParseError = 10,        // script / XML / content parse failure
  kSchemaMismatch = 11,    // persistence schema version conflict
};

/// Returns a stable human-readable name for a status code.
const char* StatusCodeName(StatusCode code);

/// Outcome of a fallible operation: a code plus an optional message.
///
/// Cheap to copy in the OK case (no allocation). Construct errors via the
/// named factories, e.g. `Status::NotFound("entity 42")`.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string_view msg) {
    return Status(StatusCode::kNotFound, msg);
  }
  static Status InvalidArgument(std::string_view msg) {
    return Status(StatusCode::kInvalidArgument, msg);
  }
  static Status Corruption(std::string_view msg) {
    return Status(StatusCode::kCorruption, msg);
  }
  static Status NotSupported(std::string_view msg) {
    return Status(StatusCode::kNotSupported, msg);
  }
  static Status IOError(std::string_view msg) {
    return Status(StatusCode::kIOError, msg);
  }
  static Status Busy(std::string_view msg) {
    return Status(StatusCode::kBusy, msg);
  }
  static Status Aborted(std::string_view msg) {
    return Status(StatusCode::kAborted, msg);
  }
  static Status OutOfRange(std::string_view msg) {
    return Status(StatusCode::kOutOfRange, msg);
  }
  static Status ResourceExhausted(std::string_view msg) {
    return Status(StatusCode::kResourceExhausted, msg);
  }
  static Status ParseError(std::string_view msg) {
    return Status(StatusCode::kParseError, msg);
  }
  static Status SchemaMismatch(std::string_view msg) {
    return Status(StatusCode::kSchemaMismatch, msg);
  }
  /// Builds a status with an explicit code (error wrapping/rewriting).
  /// `code` must not be kOk.
  static Status FromCode(StatusCode code, std::string_view msg) {
    GAMEDB_CHECK(code != StatusCode::kOk);
    return Status(code, msg);
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsBusy() const { return code_ == StatusCode::kBusy; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsParseError() const { return code_ == StatusCode::kParseError; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsSchemaMismatch() const { return code_ == StatusCode::kSchemaMismatch; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsNotSupported() const { return code_ == StatusCode::kNotSupported; }
  bool IsOutOfRange() const { return code_ == StatusCode::kOutOfRange; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string_view msg) : code_(code), message_(msg) {}

  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Analogous to
/// arrow::Result<T>.
///
/// Accessing the value of an errored Result is a checked programming error.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value.
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status. `st` must not be OK.
  Result(Status st) : payload_(std::move(st)) {  // NOLINT(runtime/explicit)
    GAMEDB_CHECK(!std::get<Status>(payload_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// Returns the error status, or OK if the Result holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(payload_);
  }

  /// Returns the contained value; aborts if this Result holds an error.
  const T& value() const& {
    GAMEDB_CHECK(ok());
    return std::get<T>(payload_);
  }
  T& value() & {
    GAMEDB_CHECK(ok());
    return std::get<T>(payload_);
  }
  T&& value() && {
    GAMEDB_CHECK(ok());
    return std::move(std::get<T>(payload_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when errored.
  T ValueOr(T fallback) const {
    if (ok()) return std::get<T>(payload_);
    return fallback;
  }

 private:
  std::variant<T, Status> payload_;
};

/// Propagates the error of a Result expression, otherwise assigns its value.
#define GAMEDB_ASSIGN_OR_RETURN(lhs, expr)            \
  auto GAMEDB_CONCAT_(_res_, __LINE__) = (expr);      \
  if (!GAMEDB_CONCAT_(_res_, __LINE__).ok())          \
    return GAMEDB_CONCAT_(_res_, __LINE__).status();  \
  lhs = std::move(GAMEDB_CONCAT_(_res_, __LINE__)).value()
#define GAMEDB_CONCAT_IMPL_(a, b) a##b
#define GAMEDB_CONCAT_(a, b) GAMEDB_CONCAT_IMPL_(a, b)

}  // namespace gamedb
