#pragma once

/// \file coding.h
/// Little-endian fixed and varint encoding of integers and primitives into
/// byte buffers. Used by world serialization, the WAL, the replication codec
/// and the blob storage layout.

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/status.h"

namespace gamedb {

/// Appends a 32-bit little-endian value.
void PutFixed32(std::string* dst, uint32_t v);
/// Appends a 64-bit little-endian value.
void PutFixed64(std::string* dst, uint64_t v);
/// Appends an IEEE float (bit pattern, little-endian).
void PutFloat(std::string* dst, float v);
/// Appends an IEEE double (bit pattern, little-endian).
void PutDouble(std::string* dst, double v);
/// Appends a LEB128 varint (1-10 bytes).
void PutVarint64(std::string* dst, uint64_t v);
/// Appends a zig-zag encoded signed varint.
void PutVarintSigned64(std::string* dst, int64_t v);
/// Appends varint length followed by the bytes.
void PutLengthPrefixed(std::string* dst, std::string_view s);

/// Cursor over an immutable byte buffer; all Get* calls consume bytes and
/// return Corruption on underflow rather than reading past the end.
class Decoder {
 public:
  explicit Decoder(std::string_view data) : data_(data) {}

  size_t remaining() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  Status GetFixed32(uint32_t* v);
  Status GetFixed64(uint64_t* v);
  Status GetFloat(float* v);
  Status GetDouble(double* v);
  Status GetVarint64(uint64_t* v);
  Status GetVarintSigned64(int64_t* v);
  /// Reads a varint length then that many raw bytes (view into the buffer).
  Status GetLengthPrefixed(std::string_view* s);
  /// Reads exactly n raw bytes.
  Status GetRaw(size_t n, std::string_view* s);

 private:
  std::string_view data_;
};

}  // namespace gamedb
