#pragma once

/// \file macros.h
/// Assertion and utility macros used across gamedb. Invariant violations are
/// programming errors and abort via GAMEDB_CHECK; recoverable failures use
/// gamedb::Status instead (see status.h).

#include <cstdio>
#include <cstdlib>

#define GAMEDB_STRINGIFY_IMPL(x) #x
#define GAMEDB_STRINGIFY(x) GAMEDB_STRINGIFY_IMPL(x)

/// Aborts with a message when `cond` is false. Enabled in all build types:
/// a corrupt game-state database is worse than a dead process.
#define GAMEDB_CHECK(cond)                                                   \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "GAMEDB_CHECK failed: %s at %s:%d\n", #cond,      \
                   __FILE__, __LINE__);                                      \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

/// Debug-only check; compiled out in NDEBUG builds on hot paths.
#ifdef NDEBUG
#define GAMEDB_DCHECK(cond) \
  do {                      \
  } while (0)
#else
#define GAMEDB_DCHECK(cond) GAMEDB_CHECK(cond)
#endif

/// Disallow copy construction/assignment for types that own resources.
#define GAMEDB_DISALLOW_COPY(TypeName)      \
  TypeName(const TypeName&) = delete;       \
  TypeName& operator=(const TypeName&) = delete

/// Propagates a non-OK Status from an expression to the caller.
#define GAMEDB_RETURN_NOT_OK(expr)             \
  do {                                         \
    ::gamedb::Status _st = (expr);             \
    if (!_st.ok()) return _st;                 \
  } while (0)
