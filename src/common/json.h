#pragma once

/// \file json.h
/// Minimal recursive-descent JSON parser shared by validators that need to
/// re-read machine-readable output the engine itself emitted (telemetry
/// snapshots, Chrome traces, benchmark captures). The per-schema validators
/// stay independent of their emitters — they parse the raw bytes through
/// this reader and then check structure themselves, so an emitter bug cannot
/// hide behind a shared serializer.
///
/// Object member order is preserved as written (vector of pairs, not a map):
/// validators can assert deterministic key order where a schema promises it.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace gamedb::json {

/// One parsed JSON value. A tagged tree, no clever variant: validators
/// pattern-match on `kind` and walk `members` / `elements` directly.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> elements;                           // kArray
  std::vector<std::pair<std::string, JsonValue>> members;    // kObject

  bool Is(Kind k) const { return kind == k; }

  /// First member named `key`, or nullptr. Objects are small here; linear
  /// scan keeps insertion order available to callers.
  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : members) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

/// Parses `text` as a single JSON document (trailing whitespace allowed,
/// trailing garbage is an error). Errors read "json: <what> at offset N".
Result<JsonValue> ParseJson(const std::string& text);

}  // namespace gamedb::json
