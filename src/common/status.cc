#include "common/status.h"

namespace gamedb {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kBusy:
      return "Busy";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kSchemaMismatch:
      return "SchemaMismatch";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace gamedb
