#pragma once

/// \file rng.h
/// Deterministic, seedable random number generation. All stochastic behaviour
/// in gamedb (workload generators, AI jitter, crash injection) flows through
/// Rng so that simulations and tests are reproducible bit-for-bit.

#include <cstdint>

#include "common/geometry.h"
#include "common/macros.h"

namespace gamedb {

/// xoshiro256** PRNG seeded via SplitMix64. Not cryptographic; fast and
/// high-quality for simulation workloads.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) { Seed(seed); }

  /// Re-seeds the generator deterministically from a single 64-bit value.
  void Seed(uint64_t seed) {
    // SplitMix64 expansion of the seed into the 256-bit state.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      s = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  uint64_t NextU64() {
    uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) {
    GAMEDB_DCHECK(bound > 0);
    // Lemire's nearly-divisionless method would be overkill; modulo bias is
    // negligible for simulation bounds << 2^64.
    return NextU64() % bound;
  }

  /// Uniform int in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi) {
    GAMEDB_DCHECK(lo <= hi);
    return lo + static_cast<int64_t>(
                    NextBounded(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform float in [lo, hi).
  float NextFloat(float lo, float hi) {
    return lo + static_cast<float>(NextDouble()) * (hi - lo);
  }

  /// Bernoulli trial with probability `p` of returning true.
  bool NextBool(double p = 0.5) { return NextDouble() < p; }

  /// Uniform point inside an axis-aligned box.
  Vec3 NextPointIn(const Aabb& box) {
    return {NextFloat(box.min.x, box.max.x), NextFloat(box.min.y, box.max.y),
            NextFloat(box.min.z, box.max.z)};
  }

  /// Unit vector with uniform direction in the XZ plane.
  Vec3 NextDirXZ() {
    float a = NextFloat(0.0f, 6.28318530718f);
    return {std::cos(a), 0.0f, std::sin(a)};
  }

  /// Standard normal via Box-Muller (one value per call; simple, adequate).
  double NextGaussian() {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

 private:
  static uint64_t Rotl(uint64_t v, int k) { return (v << k) | (v >> (64 - k)); }

  uint64_t state_[4];
};

/// Zipf(α) sampler over {0, .., n-1}; rank 0 is the hottest item. Used to
/// model hotspot contention (crowds around a boss, popular market hubs).
class ZipfGenerator {
 public:
  /// \param n number of items (> 0)
  /// \param alpha skew; 0 = uniform, ~0.99 = typical hotspot workloads
  ZipfGenerator(uint64_t n, double alpha);

  /// Samples an item index using `rng`.
  uint64_t Next(Rng& rng) const;

  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  double alpha_;
  // Rejection-inversion constants (Hörmann & Derflinger).
  double h_integral_x1_;
  double h_integral_num_items_;
  double s_;

  double HIntegral(double x) const;
  double HIntegralInverse(double x) const;
  double H(double x) const;
};

}  // namespace gamedb
