#include "common/coding.h"

namespace gamedb {

void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  buf[0] = static_cast<char>(v & 0xFF);
  buf[1] = static_cast<char>((v >> 8) & 0xFF);
  buf[2] = static_cast<char>((v >> 16) & 0xFF);
  buf[3] = static_cast<char>((v >> 24) & 0xFF);
  dst->append(buf, 4);
}

void PutFixed64(std::string* dst, uint64_t v) {
  PutFixed32(dst, static_cast<uint32_t>(v & 0xFFFFFFFFu));
  PutFixed32(dst, static_cast<uint32_t>(v >> 32));
}

void PutFloat(std::string* dst, float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutFixed32(dst, bits);
}

void PutDouble(std::string* dst, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutFixed64(dst, bits);
}

void PutVarint64(std::string* dst, uint64_t v) {
  while (v >= 0x80) {
    dst->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  dst->push_back(static_cast<char>(v));
}

void PutVarintSigned64(std::string* dst, int64_t v) {
  // Zig-zag: interleave negative and non-negative values.
  uint64_t zz = (static_cast<uint64_t>(v) << 1) ^
                static_cast<uint64_t>(v >> 63);
  PutVarint64(dst, zz);
}

void PutLengthPrefixed(std::string* dst, std::string_view s) {
  PutVarint64(dst, s.size());
  dst->append(s.data(), s.size());
}

Status Decoder::GetFixed32(uint32_t* v) {
  if (data_.size() < 4) return Status::Corruption("fixed32 underflow");
  const auto* p = reinterpret_cast<const unsigned char*>(data_.data());
  *v = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
       (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
  data_.remove_prefix(4);
  return Status::OK();
}

Status Decoder::GetFixed64(uint64_t* v) {
  uint32_t lo, hi;
  GAMEDB_RETURN_NOT_OK(GetFixed32(&lo));
  GAMEDB_RETURN_NOT_OK(GetFixed32(&hi));
  *v = (static_cast<uint64_t>(hi) << 32) | lo;
  return Status::OK();
}

Status Decoder::GetFloat(float* v) {
  uint32_t bits = 0;
  GAMEDB_RETURN_NOT_OK(GetFixed32(&bits));
  std::memcpy(v, &bits, sizeof(*v));
  return Status::OK();
}

Status Decoder::GetDouble(double* v) {
  uint64_t bits = 0;
  GAMEDB_RETURN_NOT_OK(GetFixed64(&bits));
  std::memcpy(v, &bits, sizeof(*v));
  return Status::OK();
}

Status Decoder::GetVarint64(uint64_t* v) {
  uint64_t result = 0;
  for (int shift = 0; shift <= 63; shift += 7) {
    if (data_.empty()) return Status::Corruption("varint underflow");
    uint8_t byte = static_cast<uint8_t>(data_.front());
    data_.remove_prefix(1);
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      *v = result;
      return Status::OK();
    }
  }
  return Status::Corruption("varint too long");
}

Status Decoder::GetVarintSigned64(int64_t* v) {
  uint64_t zz;
  GAMEDB_RETURN_NOT_OK(GetVarint64(&zz));
  *v = static_cast<int64_t>((zz >> 1) ^ (~(zz & 1) + 1));
  return Status::OK();
}

Status Decoder::GetLengthPrefixed(std::string_view* s) {
  uint64_t len;
  GAMEDB_RETURN_NOT_OK(GetVarint64(&len));
  return GetRaw(static_cast<size_t>(len), s);
}

Status Decoder::GetRaw(size_t n, std::string_view* s) {
  if (data_.size() < n) return Status::Corruption("raw bytes underflow");
  *s = data_.substr(0, n);
  data_.remove_prefix(n);
  return Status::OK();
}

}  // namespace gamedb
