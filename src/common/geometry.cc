#include "common/geometry.h"

#include <cstdio>

namespace gamedb {

std::string Vec3::ToString() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "(%.3f, %.3f, %.3f)", x, y, z);
  return buf;
}

std::string Aabb::ToString() const {
  if (Empty()) return "[empty]";
  return "[" + min.ToString() + " .. " + max.ToString() + "]";
}

}  // namespace gamedb
