#include "common/crc32.h"

namespace gamedb {
namespace {

// Table-driven CRC-32C (Castagnoli polynomial 0x1EDC6F41, reflected 0x82F63B78).
struct Crc32cTable {
  uint32_t t[256];
  Crc32cTable() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (0x82F63B78u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
  }
};

const Crc32cTable kTable;

}  // namespace

uint32_t Crc32c(const void* data, size_t n, uint32_t init) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = init ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    c = kTable.t[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace gamedb
