#pragma once

/// \file crc32.h
/// CRC-32C (Castagnoli) used to frame write-ahead-log records and checkpoint
/// blocks so that torn or corrupted tail writes are detected on recovery.

#include <cstddef>
#include <cstdint>

namespace gamedb {

/// Computes CRC-32C of `data[0, n)` extending the running checksum `init`
/// (pass 0 for a fresh checksum).
uint32_t Crc32c(const void* data, size_t n, uint32_t init = 0);

/// Masks a CRC so that a CRC stored alongside the data it covers does not
/// checksum to a fixed point (same trick as LevelDB/RocksDB).
inline uint32_t MaskCrc(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8ul;
}

/// Inverse of MaskCrc.
inline uint32_t UnmaskCrc(uint32_t masked) {
  uint32_t rot = masked - 0xa282ead8ul;
  return (rot >> 17) | (rot << 15);
}

}  // namespace gamedb
