#include "common/thread_pool.h"

#include <algorithm>
#include <utility>

namespace gamedb {

namespace {

/// Number of pool tasks this thread is currently inside, per pool. Lets
/// Wait() called from within a task exclude its own call stack from the
/// drain condition instead of deadlocking on itself. Keyed by pool address;
/// entries are tiny, never removed, and always zero while the thread is not
/// executing that pool's tasks, so address reuse is harmless.
thread_local std::vector<std::pair<const void*, size_t>> tls_executing;

size_t& ExecutingDepth(const void* pool) {
  for (auto& [p, n] : tls_executing) {
    if (p == pool) return n;
  }
  tls_executing.emplace_back(pool, size_t{0});
  return tls_executing.back().second;
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  GAMEDB_CHECK(num_threads >= 1);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  Submit(nullptr, std::move(task));
}

void ThreadPool::Submit(TaskGroup* group, std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    GAMEDB_CHECK(!shutdown_);
    queue_.push_back(Task{std::move(task), group});
    ++in_flight_;
    if (group != nullptr) ++group->pending_;
  }
  work_cv_.notify_one();
}

void ThreadPool::RunOneQueued(std::unique_lock<std::mutex>& lock) {
  Task task = std::move(queue_.front());
  queue_.pop_front();
  RunTask(std::move(task), lock);
}

void ThreadPool::RunTask(Task task, std::unique_lock<std::mutex>& lock) {
  lock.unlock();
  ++ExecutingDepth(this);
  task.fn();
  --ExecutingDepth(this);
  lock.lock();
  --in_flight_;
  // Waiters have depth-relative predicates (a waiter inside k nested tasks
  // drains at in_flight_ == k), so every completion may satisfy one.
  done_cv_.notify_all();
  if (task.group != nullptr) {
    --task.group->pending_;
    if (task.group->pending_ == 0) task.group->done_cv_.notify_all();
  }
}

void ThreadPool::Wait() {
  // An external caller (self_depth 0) waits for a full drain. A waiter
  // INSIDE a pool task additionally excludes (a) tasks on its own call
  // stack — they cannot finish while it blocks here — and (b) tasks on the
  // stacks of other threads currently blocked in Wait() (waiting_depth_):
  // two tasks Wait()ing concurrently would otherwise each count the other
  // as unfinished work and deadlock both forever. Excluded waiters resume,
  // finish their tasks, and external waiters then see the true drain.
  const size_t self_depth = ExecutingDepth(this);
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    const size_t excluded =
        self_depth > 0 ? waiting_depth_ + self_depth : 0;
    if (in_flight_ <= excluded) break;
    if (!queue_.empty()) {
      RunOneQueued(lock);
      continue;
    }
    // Register our stack only while actually blocked (not while helping,
    // and not counted twice by a nested Wait from a helped task).
    waiting_depth_ += self_depth;
    // Our blocking may complete another in-task waiter's drain condition.
    if (self_depth > 0) done_cv_.notify_all();
    done_cv_.wait(lock);
    waiting_depth_ -= self_depth;
  }
}

void ThreadPool::Wait(TaskGroup& group) {
  const size_t self_depth = ExecutingDepth(this);
  std::unique_lock<std::mutex> lock(mu_);
  while (group.pending_ > 0) {
    // Help only with THIS group's queued tasks. Running arbitrary queued
    // work here could trap the waiter inside an unrelated long (or blocked)
    // task from another batch — the exact cross-batch coupling per-group
    // tracking exists to remove.
    auto it = std::find_if(
        queue_.begin(), queue_.end(),
        [&group](const Task& t) { return t.group == &group; });
    if (it != queue_.end()) {
      Task task = std::move(*it);
      queue_.erase(it);
      RunTask(std::move(task), lock);
    } else {
      // All of the group's remaining tasks are executing on other threads;
      // the last completion notifies the group's cv. While blocked, an
      // in-task waiter's own stacked tasks count into waiting_depth_, so a
      // group task calling the global Wait() excludes them instead of
      // deadlocking against us (see Wait()).
      waiting_depth_ += self_depth;
      if (self_depth > 0) done_cv_.notify_all();
      group.done_cv_.wait(lock);
      waiting_depth_ -= self_depth;
    }
  }
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  size_t workers = threads_.size();
  if (workers == 1 || n < 2 * workers) {
    fn(0, n);
    return;
  }
  size_t chunk = (n + workers - 1) / workers;
  TaskGroup group;
  for (size_t begin = 0; begin < n; begin += chunk) {
    size_t end = std::min(begin + chunk, n);
    Submit(&group, [fn, begin, end] { fn(begin, end); });
  }
  Wait(group);
}

void ThreadPool::ParallelForChunks(
    size_t n, const std::function<void(size_t, size_t, size_t)>& fn) {
  if (n == 0) return;
  size_t workers = threads_.size();
  size_t chunk = (n + workers - 1) / workers;
  if (workers == 1) {
    fn(0, 0, n);
    return;
  }
  TaskGroup group;
  size_t chunk_index = 0;
  for (size_t begin = 0; begin < n; begin += chunk, ++chunk_index) {
    size_t end = std::min(begin + chunk, n);
    size_t idx = chunk_index;
    Submit(&group, [fn, idx, begin, end] { fn(idx, begin, end); });
  }
  Wait(group);
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (shutdown_) return;
      continue;
    }
    RunOneQueued(lock);
  }
}

}  // namespace gamedb
