#include "common/thread_pool.h"

#include <algorithm>

namespace gamedb {

ThreadPool::ThreadPool(size_t num_threads) {
  GAMEDB_CHECK(num_threads >= 1);
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    GAMEDB_CHECK(!shutdown_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t, size_t)>& fn) {
  if (n == 0) return;
  size_t workers = threads_.size();
  if (workers == 1 || n < 2 * workers) {
    fn(0, n);
    return;
  }
  size_t chunk = (n + workers - 1) / workers;
  for (size_t begin = 0; begin < n; begin += chunk) {
    size_t end = std::min(begin + chunk, n);
    Submit([fn, begin, end] { fn(begin, end); });
  }
  Wait();
}

void ThreadPool::ParallelForChunks(
    size_t n, const std::function<void(size_t, size_t, size_t)>& fn) {
  if (n == 0) return;
  size_t workers = threads_.size();
  size_t chunk = (n + workers - 1) / workers;
  if (workers == 1) {
    fn(0, 0, n);
    return;
  }
  size_t chunk_index = 0;
  for (size_t begin = 0; begin < n; begin += chunk, ++chunk_index) {
    size_t end = std::min(begin + chunk, n);
    size_t idx = chunk_index;
    Submit([fn, idx, begin, end] { fn(idx, begin, end); });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      if (in_flight_ == 0) done_cv_.notify_all();
    }
  }
}

}  // namespace gamedb
