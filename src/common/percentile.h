#pragma once

/// \file percentile.h
/// LatencyHistogram: a fixed-footprint log-linear (HDR-style) histogram for
/// latency-shaped value streams, supporting p50/p99/p99.9 quantile queries
/// with bounded relative error and O(1) recording.
///
/// The bucket layout is 32 linear sub-buckets per power-of-two octave, so
/// any recorded value lands in a bucket whose width is at most 1/32 (~3.2%)
/// of its magnitude — tight enough to gate tail-latency SLOs while the whole
/// histogram stays ~15 KB and mergeable by bucket-wise addition. Values
/// below 32 are recorded exactly.
///
/// Used by the scenario load harness (tools/loadgen) for per-tick latency
/// SLO reporting, and suitable for any hot-path timing accumulation: Record
/// is branch-light and allocation-free.

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdint>

namespace gamedb {

/// Monotonic wall-clock in nanoseconds — the single timestamp source of the
/// tick-phase instrumentation (ScriptTickStats, ViewStats/CatalogStats) and
/// the scenario load harness, so every phase breakdown sums consistently.
inline uint64_t MonotonicNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

class LatencyHistogram {
 public:
  /// Linear sub-buckets per octave (power of two).
  static constexpr int kSubBits = 5;
  static constexpr int kSub = 1 << kSubBits;
  /// Octave groups 0..59 cover the full uint64_t range.
  static constexpr int kBuckets = (64 - kSubBits + 1) * kSub;

  void Record(uint64_t v) {
    buckets_[BucketFor(v)]++;
    ++count_;
    sum_ += static_cast<double>(v);
    if (v < min_) min_ = v;
    if (v > max_) max_ = v;
  }

  /// Bucket-wise merge; min/max/count/sum combine exactly.
  void Merge(const LatencyHistogram& other) {
    for (int i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  void Reset() { *this = LatencyHistogram(); }

  uint64_t count() const { return count_; }
  /// 0 when empty (so an empty histogram renders as all-zeros).
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

  /// Value at percentile `p` in (0, 100]: the upper edge of the bucket
  /// containing the rank-⌈p/100·count⌉ recorded value, clamped into
  /// [min, max] (so Percentile(100) is the exact max and no estimate falls
  /// outside the observed range). 0 when empty.
  uint64_t Percentile(double p) const {
    if (count_ == 0) return 0;
    if (p >= 100.0) return max_;
    double want = p / 100.0 * static_cast<double>(count_);
    auto target = static_cast<uint64_t>(want);
    if (static_cast<double>(target) < want || target == 0) ++target;
    uint64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
      seen += buckets_[i];
      if (seen >= target) {
        return std::max(min_, std::min(max_, BucketUpperEdge(i)));
      }
    }
    return max_;
  }

  /// Bucket index for value `v`. Public so lock-free consumers (the
  /// telemetry registry's atomic histogram) can reuse the exact bucket
  /// layout and stay mergeable with LatencyHistogram captures.
  static int BucketFor(uint64_t v) {
    if (v < static_cast<uint64_t>(kSub)) return static_cast<int>(v);
    int msb = 63 - __builtin_clzll(v);
    int group = msb - kSubBits + 1;
    int sub = static_cast<int>((v >> (msb - kSubBits)) & (kSub - 1));
    return group * kSub + sub;
  }

  /// Largest value that maps to bucket `i`.
  static uint64_t BucketUpperEdge(int i) {
    if (i < kSub) return static_cast<uint64_t>(i);
    int group = i / kSub;
    int sub = i % kSub;
    int shift = group - 1;
    uint64_t lower = static_cast<uint64_t>(kSub + sub) << shift;
    return lower + ((uint64_t{1} << shift) - 1);
  }

 private:
  std::array<uint64_t, kBuckets> buckets_{};
  uint64_t count_ = 0;
  double sum_ = 0.0;
  uint64_t min_ = UINT64_MAX;
  uint64_t max_ = 0;
};

}  // namespace gamedb
