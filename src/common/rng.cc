#include "common/rng.h"

#include <cmath>

namespace gamedb {

// Rejection-inversion sampling for Zipf distributions, after Hörmann &
// Derflinger, "Rejection-inversion to generate variates from monotone
// discrete distributions" (1996). O(1) per sample, no O(n) table.

ZipfGenerator::ZipfGenerator(uint64_t n, double alpha) : n_(n), alpha_(alpha) {
  GAMEDB_CHECK(n > 0);
  GAMEDB_CHECK(alpha >= 0.0);
  h_integral_x1_ = HIntegral(1.5) - 1.0;
  h_integral_num_items_ = HIntegral(static_cast<double>(n) + 0.5);
  s_ = 2.0 - HIntegralInverse(HIntegral(2.5) - H(2.0));
}

double ZipfGenerator::H(double x) const { return std::exp(-alpha_ * std::log(x)); }

double ZipfGenerator::HIntegral(double x) const {
  // Integral of x^-alpha, expressed as (exp((1-alpha)·ln x) - 1)/(1-alpha),
  // evaluated with a series expansion near alpha == 1 for stability.
  double log_x = std::log(x);
  double t = log_x * (1.0 - alpha_);
  if (std::abs(t) > 1e-8) {
    return (std::exp(t) - 1.0) / (1.0 - alpha_);
  }
  return log_x * (1.0 + t * 0.5 * (1.0 + t / 3.0));
}

double ZipfGenerator::HIntegralInverse(double x) const {
  double t = x * (1.0 - alpha_);
  if (t < -1.0) t = -1.0;  // guard against numeric drift
  double log_result;
  if (std::abs(t) > 1e-8) {
    log_result = std::log1p(t) / (1.0 - alpha_);
  } else {
    log_result = x * (1.0 - x * (1.0 - alpha_) * 0.5);  // 2-term series
  }
  return std::exp(log_result);
}

uint64_t ZipfGenerator::Next(Rng& rng) const {
  if (n_ == 1 || alpha_ == 0.0) {
    // Uniform fallback (alpha==0 degenerates to uniform).
    return rng.NextBounded(n_);
  }
  while (true) {
    double u = h_integral_num_items_ +
               rng.NextDouble() * (h_integral_x1_ - h_integral_num_items_);
    double x = HIntegralInverse(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    if (k < 1) {
      k = 1;
    } else if (k > n_) {
      k = n_;
    }
    double kd = static_cast<double>(k);
    if (kd - x <= s_ || u >= HIntegral(kd + 0.5) - H(kd)) {
      return k - 1;  // ranks are 0-based for callers
    }
  }
}

}  // namespace gamedb
