#pragma once

/// \file geometry.h
/// Small 3D math library shared by the spatial indexes, the transaction
/// bubble partitioner, and the replication layer. Game worlds in gamedb are
/// three-dimensional; the navigation mesh operates on the XZ plane.

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>

namespace gamedb {

/// 3-component float vector (positions, velocities, extents).
struct Vec3 {
  float x = 0.0f;
  float y = 0.0f;
  float z = 0.0f;

  constexpr Vec3() = default;
  constexpr Vec3(float xx, float yy, float zz) : x(xx), y(yy), z(zz) {}

  constexpr Vec3 operator+(const Vec3& o) const {
    return {x + o.x, y + o.y, z + o.z};
  }
  constexpr Vec3 operator-(const Vec3& o) const {
    return {x - o.x, y - o.y, z - o.z};
  }
  constexpr Vec3 operator*(float s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(float s) const { return {x / s, y / s, z / s}; }
  constexpr Vec3 operator-() const { return {-x, -y, -z}; }

  Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  Vec3& operator-=(const Vec3& o) {
    x -= o.x;
    y -= o.y;
    z -= o.z;
    return *this;
  }
  Vec3& operator*=(float s) {
    x *= s;
    y *= s;
    z *= s;
    return *this;
  }

  constexpr bool operator==(const Vec3& o) const {
    return x == o.x && y == o.y && z == o.z;
  }

  float Dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
  Vec3 Cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  float LengthSquared() const { return Dot(*this); }
  float Length() const { return std::sqrt(LengthSquared()); }

  /// Returns a unit-length copy, or the zero vector if this is (near) zero.
  Vec3 Normalized() const {
    float len = Length();
    if (len < 1e-12f) return {};
    return *this / len;
  }

  float DistanceTo(const Vec3& o) const { return (*this - o).Length(); }
  float DistanceSquaredTo(const Vec3& o) const {
    return (*this - o).LengthSquared();
  }

  std::string ToString() const;
};

inline constexpr Vec3 operator*(float s, const Vec3& v) { return v * s; }

/// Componentwise min/max.
inline Vec3 Min(const Vec3& a, const Vec3& b) {
  return {std::min(a.x, b.x), std::min(a.y, b.y), std::min(a.z, b.z)};
}
inline Vec3 Max(const Vec3& a, const Vec3& b) {
  return {std::max(a.x, b.x), std::max(a.y, b.y), std::max(a.z, b.z)};
}

/// Linear interpolation between `a` and `b` at parameter `t` in [0,1].
inline Vec3 Lerp(const Vec3& a, const Vec3& b, float t) {
  return a + (b - a) * t;
}

/// Axis-aligned bounding box. Empty when min > max on any axis.
struct Aabb {
  Vec3 min{1.0f, 1.0f, 1.0f};
  Vec3 max{-1.0f, -1.0f, -1.0f};  // default-constructed box is empty

  constexpr Aabb() = default;
  constexpr Aabb(const Vec3& mn, const Vec3& mx) : min(mn), max(mx) {}

  /// Box covering a sphere at `center` with radius `r` (r >= 0).
  static Aabb FromSphere(const Vec3& center, float r) {
    return {center - Vec3(r, r, r), center + Vec3(r, r, r)};
  }
  /// Degenerate box containing a single point.
  static Aabb FromPoint(const Vec3& p) { return {p, p}; }

  bool Empty() const {
    return min.x > max.x || min.y > max.y || min.z > max.z;
  }
  Vec3 Center() const { return (min + max) * 0.5f; }
  Vec3 Extent() const { return max - min; }
  float Volume() const {
    if (Empty()) return 0.0f;
    Vec3 e = Extent();
    return e.x * e.y * e.z;
  }

  bool Contains(const Vec3& p) const {
    return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y &&
           p.z >= min.z && p.z <= max.z;
  }
  bool Contains(const Aabb& o) const {
    return !o.Empty() && Contains(o.min) && Contains(o.max);
  }
  bool Intersects(const Aabb& o) const {
    if (Empty() || o.Empty()) return false;
    return min.x <= o.max.x && max.x >= o.min.x && min.y <= o.max.y &&
           max.y >= o.min.y && min.z <= o.max.z && max.z >= o.min.z;
  }

  /// Smallest box containing both boxes.
  Aabb Union(const Aabb& o) const {
    if (Empty()) return o;
    if (o.Empty()) return *this;
    return {Min(min, o.min), Max(max, o.max)};
  }
  /// Overlap region (empty box when disjoint).
  Aabb Intersection(const Aabb& o) const {
    Aabb r{Max(min, o.min), Min(max, o.max)};
    return r;
  }
  /// Box grown by `r` on every side.
  Aabb Inflated(float r) const {
    return {min - Vec3(r, r, r), max + Vec3(r, r, r)};
  }

  /// Squared distance from `p` to the closest point of the box (0 inside).
  float DistanceSquaredTo(const Vec3& p) const {
    float dx = std::max({min.x - p.x, 0.0f, p.x - max.x});
    float dy = std::max({min.y - p.y, 0.0f, p.y - max.y});
    float dz = std::max({min.z - p.z, 0.0f, p.z - max.z});
    return dx * dx + dy * dy + dz * dz;
  }

  /// True when any point of the box lies within `r` of `center`.
  bool IntersectsSphere(const Vec3& center, float r) const {
    return !Empty() && DistanceSquaredTo(center) <= r * r;
  }

  std::string ToString() const;
};

/// 2D point in the XZ plane, used by the navigation mesh.
struct Vec2 {
  float x = 0.0f;
  float z = 0.0f;

  constexpr Vec2() = default;
  constexpr Vec2(float xx, float zz) : x(xx), z(zz) {}
  static Vec2 FromXZ(const Vec3& v) { return {v.x, v.z}; }
  Vec3 ToVec3(float y = 0.0f) const { return {x, y, z}; }

  constexpr Vec2 operator+(const Vec2& o) const { return {x + o.x, z + o.z}; }
  constexpr Vec2 operator-(const Vec2& o) const { return {x - o.x, z - o.z}; }
  constexpr Vec2 operator*(float s) const { return {x * s, z * s}; }
  constexpr bool operator==(const Vec2& o) const {
    return x == o.x && z == o.z;
  }

  float Dot(const Vec2& o) const { return x * o.x + z * o.z; }
  /// Z-component of the 3D cross product; >0 when `o` is counter-clockwise
  /// from *this.
  float Cross(const Vec2& o) const { return x * o.z - z * o.x; }
  float LengthSquared() const { return Dot(*this); }
  float Length() const { return std::sqrt(LengthSquared()); }
  float DistanceTo(const Vec2& o) const { return (*this - o).Length(); }
};

/// Orientation of the triangle (a,b,c): >0 counter-clockwise, <0 clockwise,
/// 0 collinear (in the XZ plane).
inline float Orient2D(const Vec2& a, const Vec2& b, const Vec2& c) {
  return (b - a).Cross(c - a);
}

}  // namespace gamedb
