#include "views/maintainer.h"

#include <algorithm>

#include "common/percentile.h"

namespace gamedb::views {

ViewCatalog::~ViewCatalog() {
  for (uint32_t id : captured_) {
    ComponentStore* store = world_->StoreById(id);
    if (store != nullptr) store->DisableChangeCapture();
  }
}

Result<LiveView*> ViewCatalog::Register(ViewDef def) {
  if (Find(def.name) != nullptr) {
    return Status::InvalidArgument("duplicate view name: " + def.name);
  }
  std::unique_ptr<LiveView> view(
      new LiveView(world_, planner_, std::move(def)));
  GAMEDB_RETURN_NOT_OK(view->Resolve());
  // Dependency tables exist from here on (StoreById creates them), so the
  // view's Matches and a fresh DynamicQuery agree on store lookups.
  std::vector<uint32_t> newly_captured;
  for (uint32_t id : view->dependencies()) {
    ComponentStore* store = world_->StoreById(id);
    GAMEDB_CHECK(store != nullptr);  // Resolve validated the type id
    store->EnableChangeCapture();
    if (captured_set_.insert(id).second) {
      captured_.push_back(id);
      newly_captured.push_back(id);
    }
  }
  view->CacheStores();  // stores exist now; Matches resolves them once
  Status populated = view->Repopulate();
  if (!populated.ok()) {
    // Honor the "unchanged on failure" contract: stop capturing tables no
    // registered view depends on.
    for (uint32_t id : newly_captured) {
      world_->StoreById(id)->DisableChangeCapture();
      captured_set_.erase(id);
      captured_.erase(
          std::remove(captured_.begin(), captured_.end(), id),
          captured_.end());
    }
    return populated;
  }
  for (uint32_t id : view->dependencies()) {
    by_table_[id].push_back(view.get());
  }
  by_name_.emplace(view->name(), view.get());
  views_.push_back(std::move(view));
  return views_.back().get();
}

LiveView* ViewCatalog::Find(const std::string& name) {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second;
}

const LiveView* ViewCatalog::Find(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second;
}

bool ViewCatalog::Unregister(const std::string& name) {
  LiveView* view = Find(name);
  if (view == nullptr) return false;
  // `name` may reference the view's own name (SyncServer passes
  // view->name()); erase by iterator before the view can be destroyed.
  by_name_.erase(by_name_.find(name));
  for (uint32_t id : view->dependencies()) {
    auto it = by_table_.find(id);
    if (it == by_table_.end()) continue;
    it->second.erase(
        std::remove(it->second.begin(), it->second.end(), view),
        it->second.end());
  }
  views_.erase(std::remove_if(views_.begin(), views_.end(),
                              [&](const std::unique_ptr<LiveView>& v) {
                                return v.get() == view;
                              }),
               views_.end());
  return true;
}

void ViewCatalog::SetTelemetry(const telemetry::TelemetrySink& sink) {
  telemetry_ = sink;
  if (sink.metrics != nullptr) {
    m_rounds_ = sink.metrics->GetCounter("views.rounds");
    m_tables_flushed_ = sink.metrics->GetCounter("views.tables_flushed");
    m_change_records_ = sink.metrics->GetCounter("views.change_records");
    m_round_ns_ = sink.metrics->GetHistogram("views.maintain_round_ns");
  }
}

void ViewCatalog::Maintain() {
  telemetry::TraceSpan span(telemetry_.tracer, "views.maintain_round");
  const uint64_t t0 = MonotonicNanos();
  const uint64_t changes_before = stats_.change_records;
  const uint64_t flushed_before = stats_.tables_flushed;
  ++stats_.rounds;
  for (uint32_t id : captured_) {
    ComponentStore* store = world_->StoreById(id);
    store->FlushChanges(&scratch_);
    if (scratch_.Empty()) continue;
    ++stats_.tables_flushed;
    stats_.change_records += scratch_.TotalChanges();
    auto it = by_table_.find(id);
    if (it == by_table_.end()) continue;
    for (LiveView* v : it->second) {
      // Everything is a candidate; re-evaluation is stateless, so routing
      // a removal to a non-member (or an add that also satisfies another
      // view's predicate) costs one cheap match check, never corruption.
      for (EntityId e : scratch_.added) v->MarkCandidate(e);
      for (EntityId e : scratch_.removed) v->MarkCandidate(e);
      for (EntityId e : scratch_.updated) v->MarkCandidate(e);
    }
  }
  for (auto& v : views_) v->ApplyCandidates();
  stats_.last_round_changes = stats_.change_records - changes_before;
  stats_.last_round_ns = MonotonicNanos() - t0;
  stats_.maintain_ns += stats_.last_round_ns;
  if (m_rounds_ != nullptr) {
    m_rounds_->Increment();
    m_tables_flushed_->Add(stats_.tables_flushed - flushed_before);
    m_change_records_->Add(stats_.last_round_changes);
    m_round_ns_->Record(stats_.last_round_ns);
  }
}

}  // namespace gamedb::views
