#pragma once

/// \file maintainer.h
/// ViewCatalog: owns a World's LiveViews and drives their incremental
/// maintenance from change capture.
///
/// Flow per quiescent point (ViewCatalog::Maintain — the ScriptHost calls
/// it before each parallel query phase when wired via
/// ScriptHostOptions::views):
///   1. every captured dependency table flushes its change ring once into
///      a shared net ChangeSet (core/change_log.h);
///   2. each changed entity is marked as a re-evaluation candidate on every
///      view depending on that table (deduplicated per view);
///   3. each view re-evaluates its candidates against current world state —
///      enter/exit/update transitions fire subscriptions deterministically.
/// Re-evaluation is stateless per entity (current match status vs current
/// membership), so any candidate superset converges to the correct
/// membership; cost scales with change volume, not world size.
///
/// Ownership rule: the catalog owns change-capture flushing for its
/// dependency tables. Don't flush those tables elsewhere, and run at most
/// one catalog per World, or deltas are consumed by one flusher and lost
/// to the other.

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "core/world.h"
#include "telemetry/sink.h"
#include "views/view.h"

namespace gamedb::views {

/// Maintenance counters for one catalog.
struct CatalogStats {
  uint64_t rounds = 0;          ///< Maintain() calls
  uint64_t tables_flushed = 0;  ///< flushes that carried any net change
  uint64_t change_records = 0;  ///< net change records routed to views
  /// Per-maintain cost counters (scenario-harness breakdown): cumulative
  /// wall time (ns) across all Maintain() rounds, plus what the most
  /// recent round did — so a driver can attribute a latency spike to "this
  /// tick flushed 40k deltas", not just "views were slow".
  uint64_t maintain_ns = 0;
  uint64_t last_round_ns = 0;
  uint64_t last_round_changes = 0;
};

/// Registry + maintainer of LiveViews over one World. Sequential-phase
/// object: Register/Maintain must not run concurrently with each other or
/// with view reads (the ScriptHost wiring calls Maintain from its
/// sequential point, which is exactly that discipline).
class ViewCatalog {
 public:
  /// `planner` (a planner/planner.h QueryPlanner, or null for the built-in
  /// query path) executes view (re)populations; it must outlive the
  /// catalog.
  explicit ViewCatalog(World* world, QueryPlanHook* planner = nullptr)
      : world_(world), planner_(planner) {}
  /// Disables change capture on every table this catalog flushed — with
  /// the flusher gone, a still-capturing table's ring would grow without
  /// bound. The catalog must therefore not outlive its World.
  ~ViewCatalog();
  GAMEDB_DISALLOW_COPY(ViewCatalog);

  /// Resolves, registers and populates a view. Enables change capture on
  /// every dependency table. Fails on unknown names, empty constraint sets
  /// or a duplicate view name; the catalog is unchanged on failure
  /// (capture enabled for the failed view's tables is rolled back unless
  /// an already-registered view shares the table).
  Result<LiveView*> Register(ViewDef def);

  /// Registered view by name (O(1), no key-copy allocation — the GSL view
  /// builtins resolve a name per call on the parallel-phase path);
  /// nullptr when unknown.
  LiveView* Find(const std::string& name);
  const LiveView* Find(const std::string& name) const;

  /// Removes (and destroys) a view; returns whether it existed. Change
  /// capture stays enabled on its tables (other views — or a later
  /// registration — may depend on them; the per-tick flush of a quiet
  /// table is a no-op). Invalidates LiveView* pointers to this view.
  bool Unregister(const std::string& name);

  /// Quiescent-point maintenance: flush captured tables, re-evaluate
  /// changed entities, fire subscriptions. See file comment.
  void Maintain();

  size_t view_count() const { return views_.size(); }

  /// Names of every registered view, in registration order (feeds schema
  /// enumeration for did-you-mean lint suggestions).
  std::vector<std::string> ViewNames() const {
    std::vector<std::string> names;
    names.reserve(views_.size());
    for (const auto& v : views_) names.push_back(v->name());
    return names;
  }

  const CatalogStats& stats() const { return stats_; }
  World* world() const { return world_; }
  QueryPlanHook* planner() const { return planner_; }

  /// Attaches a telemetry sink: Maintain() folds its round/flush/change
  /// counters into `views.*` registry instruments and records a
  /// "views.maintain_round" span per round. Non-owning; the sink's
  /// registry/tracer must outlive the catalog. Call from sequential code.
  void SetTelemetry(const telemetry::TelemetrySink& sink);

 private:
  World* world_;
  QueryPlanHook* planner_;
  std::vector<std::unique_ptr<LiveView>> views_;
  /// name -> view (the GSL builtins resolve names per call; keep it O(1)).
  std::unordered_map<std::string, LiveView*> by_name_;
  /// type id -> views depending on that table (registration order).
  std::unordered_map<uint32_t, std::vector<LiveView*>> by_table_;
  /// Tables this catalog flushes, in first-registration order.
  std::vector<uint32_t> captured_;
  std::unordered_set<uint32_t> captured_set_;
  ChangeSet scratch_;
  CatalogStats stats_;
  telemetry::TelemetrySink telemetry_;
  /// Cached registry instruments (all nullptr until SetTelemetry).
  telemetry::Counter* m_rounds_ = nullptr;
  telemetry::Counter* m_tables_flushed_ = nullptr;
  telemetry::Counter* m_change_records_ = nullptr;
  telemetry::Histogram* m_round_ns_ = nullptr;
};

}  // namespace gamedb::views
