#include "views/view.h"

#include <algorithm>
#include <cmath>
#include <mutex>

#include "common/percentile.h"

namespace gamedb::views {

const char* AggKindName(AggKind k) {
  switch (k) {
    case AggKind::kNone:
      return "none";
    case AggKind::kCount:
      return "count";
    case AggKind::kSum:
      return "sum";
    case AggKind::kAvg:
      return "avg";
    case AggKind::kMin:
      return "min";
    case AggKind::kMax:
      return "max";
  }
  return "?";
}

Status LiveView::Resolve() {
  if (def_.name.empty()) {
    return Status::InvalidArgument("a LiveView needs a non-empty name");
  }
  const TypeRegistry& reg = TypeRegistry::Global();
  auto resolve_component = [&](const std::string& name,
                               const TypeInfo** out) -> Status {
    *out = reg.FindByName(name);
    if (*out == nullptr) {
      return Status::NotFound("unknown component: " + name);
    }
    return Status::OK();
  };
  auto resolve_field = [&](const std::string& component,
                           const std::string& field, uint32_t* type_id,
                           const FieldInfo** out) -> Status {
    const TypeInfo* info = nullptr;
    GAMEDB_RETURN_NOT_OK(resolve_component(component, &info));
    *type_id = info->id();
    *out = info->FindField(field);
    if (*out == nullptr) {
      return Status::NotFound("unknown field: " + component + "." + field);
    }
    return Status::OK();
  };

  // Build the required/predicate lists in exactly the order constructing
  // the equivalent DynamicQuery would (With..., WhereField..., WithinRadius,
  // aggregate component last) — the canonical driver tie-break depends on
  // this order.
  for (const std::string& component : def_.with) {
    const TypeInfo* info = nullptr;
    GAMEDB_RETURN_NOT_OK(resolve_component(component, &info));
    required_.push_back(info->id());
  }
  for (const ViewDef::Where& w : def_.where) {
    uint32_t type_id = 0;
    const FieldInfo* f = nullptr;
    GAMEDB_RETURN_NOT_OK(resolve_field(w.component, w.field, &type_id, &f));
    required_.push_back(type_id);
    predicates_.push_back(DynamicQuery::Predicate{type_id, f, w.op, w.rhs});
  }
  if (def_.has_near) {
    uint32_t type_id = 0;
    const FieldInfo* f = nullptr;
    GAMEDB_RETURN_NOT_OK(resolve_field(def_.near.component, def_.near.field,
                                       &type_id, &f));
    required_.push_back(type_id);
    radius_predicates_.push_back(DynamicQuery::RadiusPredicate{
        type_id, f, def_.near.center, def_.near.radius});
  }
  if (def_.aggregate != AggKind::kNone) {
    GAMEDB_RETURN_NOT_OK(resolve_field(def_.agg_component, def_.agg_field,
                                       &agg_type_, &agg_field_));
    required_.push_back(agg_type_);
  }
  if (required_.empty()) {
    return Status::InvalidArgument("view '" + def_.name +
                                   "' has no component constraint");
  }
  for (uint32_t id : required_) {
    if (std::find(deps_.begin(), deps_.end(), id) == deps_.end()) {
      deps_.push_back(id);
    }
  }
  return Status::OK();
}

Status LiveView::RunQuery(std::vector<EntityId>* out) const {
  DynamicQuery q(world_);
  q.SetPlanner(planner_);
  for (const std::string& component : def_.with) q.With(component);
  for (const ViewDef::Where& w : def_.where) {
    q.WhereField(w.component, w.field, w.op, w.rhs);
  }
  if (def_.has_near) {
    q.WithinRadius(def_.near.component, def_.near.field, def_.near.center,
                   def_.near.radius);
  }
  if (def_.aggregate != AggKind::kNone) q.With(def_.agg_component);
  return q.Each([out](EntityId e) { out->push_back(e); });
}

const ComponentStore* LiveView::CanonicalDriver() const {
  // Duplicates in required_ can't change the pick (a later equal-size
  // duplicate never beats the earlier occurrence), so the deduplicated
  // cached stores reproduce DynamicQuery::CanonicalDriver exactly —
  // without per-call map lookups (this runs inside the Members() cache
  // validity check, a parallel-phase hot path).
  const ComponentStore* driver = nullptr;
  if (!dep_stores_.empty()) {
    for (const ComponentStore* store : dep_stores_) {
      if (driver == nullptr || store->Size() < driver->Size()) driver = store;
    }
    return driver;
  }
  for (uint32_t id : required_) {  // pre-CacheStores fallback
    const ComponentStore* store = world_->StoreByIdIfExists(id);
    if (store == nullptr) return nullptr;
    if (driver == nullptr || store->Size() < driver->Size()) driver = store;
  }
  return driver;
}

void LiveView::CacheStores() {
  auto store_of = [&](uint32_t id) {
    const ComponentStore* store = world_->StoreByIdIfExists(id);
    GAMEDB_CHECK(store != nullptr);  // ViewCatalog created it at Register
    return store;
  };
  dep_stores_.clear();
  predicate_stores_.clear();
  radius_stores_.clear();
  for (uint32_t id : deps_) dep_stores_.push_back(store_of(id));
  for (const auto& p : predicates_) {
    predicate_stores_.push_back(store_of(p.type_id));
  }
  for (const auto& rp : radius_predicates_) {
    radius_stores_.push_back(store_of(rp.type_id));
  }
  if (def_.aggregate != AggKind::kNone) agg_store_ = store_of(agg_type_);
}

bool LiveView::Matches(EntityId e) const {
  // Mirrors DynamicQuery::Matches bit for bit — the differential contract
  // depends on these two agreeing on every edge (non-Vec3 position values,
  // FieldValue comparison semantics). The only divergence is mechanical:
  // the per-table store lookups are pre-resolved (CacheStores), which the
  // registration-time store creation makes equivalent.
  for (const ComponentStore* store : dep_stores_) {
    if (!store->Contains(e)) return false;
  }
  for (size_t i = 0; i < predicates_.size(); ++i) {
    const auto& p = predicates_[i];
    const void* comp = predicate_stores_[i]->Find(e);
    if (!CompareFieldValues(p.field->Get(comp), p.op, p.rhs)) return false;
  }
  for (size_t i = 0; i < radius_predicates_.size(); ++i) {
    const auto& rp = radius_predicates_[i];
    const void* comp = radius_stores_[i]->Find(e);
    FieldValue v = rp.field->Get(comp);
    const Vec3* pos = std::get_if<Vec3>(&v);
    if (pos == nullptr) return false;
    if (pos->DistanceSquaredTo(rp.center) > rp.radius * rp.radius) {
      return false;
    }
  }
  return true;
}

const std::vector<EntityId>& LiveView::Members() const {
  auto valid = [this]() {
    return !sorted_dirty_ && sorted_driver_ != nullptr &&
           sorted_driver_ == CanonicalDriver() &&
           sorted_driver_->last_version() == sorted_driver_version_;
  };
  {
    std::shared_lock<std::shared_mutex> lock(sort_mu_);
    if (valid()) return sorted_;
  }
  std::unique_lock<std::shared_mutex> lock(sort_mu_);
  if (valid()) return sorted_;
  const ComponentStore* driver = CanonicalDriver();
  sorted_.clear();
  sorted_.reserve(members_.size());
  if (driver != nullptr) {
    std::vector<std::pair<size_t, EntityId>> order;
    order.reserve(members_.size());
    for (uint64_t raw : members_) {
      EntityId e = EntityId::FromRaw(raw);
      size_t pos = driver->DenseIndexOf(e);
      // A member may legitimately have no driver row: world mutations
      // (Destroy, Remove) take effect immediately, while the view only
      // reconciles at the next Maintain/Repopulate. A caller reading
      // Members() inside that window — Recenter before the tick's
      // Maintain is the canonical case — sees the surviving members in
      // canonical order; the stale ones exit when their pending deltas
      // drain.
      if (pos == ComponentStore::kNoDenseIndex) continue;
      order.emplace_back(pos, e);
    }
    std::sort(order.begin(), order.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [pos, e] : order) sorted_.push_back(e);
    sorted_driver_version_ = driver->last_version();
  }
  sorted_driver_ = driver;
  sorted_dirty_ = driver == nullptr;  // no driver: nothing to cache against
  return sorted_;
}

Result<double> LiveView::Aggregate() const {
  if (def_.aggregate == AggKind::kNone) {
    return Status::NotSupported("view '" + def_.name + "' has no aggregate");
  }
  if (def_.aggregate == AggKind::kCount) {
    return static_cast<double>(members_.size());
  }
  // Exactly DynamicQuery's NumericFold, folded in canonical member order,
  // so floating-point rounding matches a fresh terminal bit for bit.
  double sum = 0.0, mn = 0.0, mx = 0.0;
  int64_t n = 0;
  for (EntityId e : Members()) {
    FieldValue v = agg_field_->Get(agg_store_->Find(e));
    double num = 0.0;
    if (!FieldValueAsNumber(v, &num)) continue;
    if (n == 0 || num < mn) mn = num;
    if (n == 0 || num > mx) mx = num;
    sum += num;
    ++n;
  }
  switch (def_.aggregate) {
    case AggKind::kSum:
      return sum;
    case AggKind::kAvg:
      if (n == 0) return Status::NotFound("no rows match");
      return sum / static_cast<double>(n);
    case AggKind::kMin:
      if (n == 0) return Status::NotFound("no rows match");
      return mn;
    case AggKind::kMax:
      if (n == 0) return Status::NotFound("no rows match");
      return mx;
    case AggKind::kNone:
    case AggKind::kCount:
      break;  // handled above
  }
  return Status::NotSupported("unknown aggregate kind");
}

bool LiveView::AggValue(EntityId e, double* out) const {
  const void* comp = agg_store_->Find(e);
  if (comp == nullptr) return false;
  FieldValue v = agg_field_->Get(comp);
  // NaN would wedge the running sum (sum - NaN never recovers) and break
  // the extrema multiset's ordering; the exact Aggregate() fold still
  // reports it with fresh-terminal semantics.
  return FieldValueAsNumber(v, out) && !std::isnan(*out);
}

void LiveView::AggAdd(EntityId e) {
  // kCount needs no per-member state (count == membership size), and only
  // kMin/kMax pay the extrema multiset.
  switch (def_.aggregate) {
    case AggKind::kNone:
    case AggKind::kCount:
      return;
    case AggKind::kSum:
    case AggKind::kAvg: {
      double v = 0.0;
      if (!AggValue(e, &v)) return;
      contrib_[e.Raw()] = v;
      running_.Add(v);
      return;
    }
    case AggKind::kMin:
    case AggKind::kMax: {
      double v = 0.0;
      if (!AggValue(e, &v)) return;
      contrib_[e.Raw()] = v;
      running_.Add(v);
      extrema_.insert(v);
      return;
    }
  }
}

void LiveView::AggRemove(EntityId e) {
  if (def_.aggregate == AggKind::kNone ||
      def_.aggregate == AggKind::kCount) {
    return;
  }
  auto it = contrib_.find(e.Raw());
  if (it == contrib_.end()) return;
  running_.Remove(it->second);
  if (def_.aggregate == AggKind::kMin || def_.aggregate == AggKind::kMax) {
    auto pos = extrema_.find(it->second);
    GAMEDB_DCHECK(pos != extrema_.end());
    if (pos != extrema_.end()) extrema_.erase(pos);
  }
  contrib_.erase(it);
}

void LiveView::MarkCandidate(EntityId e) {
  // A net ChangeSet lists an entity at most once, so single-table views
  // cannot see duplicates — skip the dedup hashing entirely.
  if (deps_.size() > 1 && !candidate_set_.insert(e.Raw()).second) return;
  candidates_.push_back(e);
}

void LiveView::ApplyCandidates() {
  if (candidates_.empty()) return;
  const uint64_t t0 = MonotonicNanos();
  for (EntityId e : candidates_) Reevaluate(e);
  candidates_.clear();
  candidate_set_.clear();
  stats_.maintain_ns += MonotonicNanos() - t0;
}

void LiveView::Reevaluate(EntityId e) {
  ++stats_.reevaluated;
  const bool is_member = members_.count(e.Raw()) > 0;
  const bool match = world_->Alive(e) && Matches(e);
  if (match && !is_member) {
    Enter(e);
  } else if (!match && is_member) {
    Exit(e);
  } else if (match && is_member) {
    Update(e);
  }
}

void LiveView::Enter(EntityId e) {
  members_.insert(e.Raw());
  {
    std::unique_lock<std::shared_mutex> lock(sort_mu_);
    sorted_dirty_ = true;
  }
  AggAdd(e);
  ++stats_.enters;
  for (const Callback& cb : enter_cbs_) {
    if (cb) cb(e);
  }
}

void LiveView::Exit(EntityId e) {
  members_.erase(e.Raw());
  {
    std::unique_lock<std::shared_mutex> lock(sort_mu_);
    sorted_dirty_ = true;
  }
  AggRemove(e);
  ++stats_.exits;
  for (const Callback& cb : exit_cbs_) {
    if (cb) cb(e);
  }
}

void LiveView::Update(EntityId e) {
  ++stats_.updates;
  if (def_.aggregate != AggKind::kNone) {
    AggRemove(e);
    AggAdd(e);
  }
  for (const Callback& cb : update_cbs_) {
    if (cb) cb(e);
  }
}

Status LiveView::Repopulate() {
  const uint64_t t0 = MonotonicNanos();
  std::vector<EntityId> fresh;
  GAMEDB_RETURN_NOT_OK(RunQuery(&fresh));
  ++stats_.repopulations;
  std::unordered_set<uint64_t> fresh_set;
  fresh_set.reserve(fresh.size());
  for (EntityId e : fresh) fresh_set.insert(e.Raw());
  // Exits in current canonical order, then enters in fresh (canonical)
  // order — subscribers see a deterministic delta stream, not a rebuild.
  // Members() only orders members that still have a driver row; members
  // whose row is already gone (destroyed since the last Maintain, deltas
  // still pending) are appended in raw-id order so the reconcile exits
  // them here instead of leaving them to linger until the next Maintain.
  std::vector<EntityId> old = Members();
  if (old.size() < members_.size()) {
    std::unordered_set<uint64_t> ordered;
    ordered.reserve(old.size());
    for (EntityId e : old) ordered.insert(e.Raw());
    std::vector<uint64_t> rowless;
    for (uint64_t raw : members_) {
      if (ordered.count(raw) == 0) rowless.push_back(raw);
    }
    std::sort(rowless.begin(), rowless.end());
    for (uint64_t raw : rowless) old.push_back(EntityId::FromRaw(raw));
  }
  for (EntityId e : old) {
    if (fresh_set.count(e.Raw()) == 0) Exit(e);
  }
  for (EntityId e : fresh) {
    if (members_.count(e.Raw()) == 0) Enter(e);
  }
  // The fresh result *is* the canonical order — seed the sort cache.
  const ComponentStore* driver = CanonicalDriver();
  std::unique_lock<std::shared_mutex> lock(sort_mu_);
  sorted_ = std::move(fresh);
  sorted_driver_ = driver;
  sorted_driver_version_ = driver != nullptr ? driver->last_version() : 0;
  sorted_dirty_ = driver == nullptr;
  stats_.maintain_ns += MonotonicNanos() - t0;
  return Status::OK();
}

Status LiveView::Recenter(const Vec3& center) {
  if (!def_.has_near) {
    return Status::InvalidArgument("view '" + def_.name +
                                   "' has no proximity term to recenter");
  }
  if (def_.near.center == center) return Status::OK();
  const Vec3 old_center = def_.near.center;
  def_.near.center = center;
  radius_predicates_.front().center = center;
  Status st = Repopulate();
  if (!st.ok()) {
    // A failed repopulate fails before touching membership (the query
    // errors out pre-diff); restore the old center so the same-center
    // early-return above can't mask stale membership as success.
    def_.near.center = old_center;
    radius_predicates_.front().center = old_center;
  }
  return st;
}

}  // namespace gamedb::views
