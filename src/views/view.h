#pragma once

/// \file view.h
/// LiveView: an incrementally-maintained materialized view over the game
/// state database — a registered continuous query (conjunctive component /
/// field predicates, an optional fixed-center proximity term, an optional
/// aggregate) that is populated once through the cost-based planner and
/// thereafter maintained from per-table change capture
/// (core/change_log.h), so its per-tick cost scales with *change volume*,
/// not world size.
///
/// Paper: the "declarative processing" follow-up (Sowell et al., PAPERS.md)
/// argues the payoff of declarative game state is *incremental* evaluation:
/// queries that persist across ticks and are maintained from deltas instead
/// of re-scanned. A LiveView is that artifact; E14 measures the re-scan vs
/// maintenance crossover.
///
/// Correctness contract (enforced by tests/views/differential_test.cc):
/// after any sequence of tracked mutations followed by maintenance, a
/// LiveView's membership, iteration order and Aggregate() value are
/// bit-identical to a from-scratch planner execution of the same
/// DynamicQuery. Writes that bypass change tracking
/// (GetMutableUntracked without Touch) are invisible — the same contract
/// maintained aggregates (core/aggregate.h) live with.
///
/// Thread safety: maintenance (ViewCatalog::Maintain, Recenter) and
/// registration are sequential-phase operations. Read accessors —
/// Contains/size/count/running_*/Members/Aggregate — are safe to call
/// concurrently with each other (the scripted parallel query phase does;
/// the lazy sort cache behind Members is double-checked-locked), but not
/// concurrently with maintenance.

#include <cstdint>
#include <functional>
#include <memory>
#include <set>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "core/aggregate.h"
#include "core/change_log.h"
#include "core/query.h"
#include "core/world.h"

namespace gamedb::views {

/// Aggregate a LiveView maintains over its members, evaluated with exactly
/// DynamicQuery's terminal semantics (Count/Sum/Min/Max/Avg).
enum class AggKind : uint8_t { kNone, kCount, kSum, kAvg, kMin, kMax };

const char* AggKindName(AggKind k);

/// Declarative definition of a LiveView — the continuous-query analogue of
/// building a DynamicQuery. Component/field names resolve at registration;
/// unknown names fail Register with NotFound.
struct ViewDef {
  /// Catalog-unique view name (subscriptions, GSL builtins, diagnostics).
  std::string name;

  /// Entities must carry every listed component.
  std::vector<std::string> with;

  /// One field comparison, as DynamicQuery::WhereField.
  struct Where {
    std::string component;
    std::string field;
    CmpOp op;
    FieldValue rhs;
  };
  std::vector<Where> where;

  /// Optional proximity term, as DynamicQuery::WithinRadius. The center
  /// may later be moved with LiveView::Recenter (an index-assisted
  /// repopulate, not an O(world) rescan).
  struct Near {
    std::string component;
    std::string field;
    Vec3 center;
    float radius = 0.0f;
  };
  bool has_near = false;
  Near near;

  /// Optional maintained aggregate over `agg_component.agg_field`. An
  /// aggregate view additionally requires the aggregated component (a
  /// fresh DynamicQuery aggregate terminal does the same).
  AggKind aggregate = AggKind::kNone;
  std::string agg_component;
  std::string agg_field;
};

/// Maintenance counters for one LiveView.
struct ViewStats {
  uint64_t reevaluated = 0;    ///< per-entity delta re-evaluations
  uint64_t enters = 0;         ///< membership additions
  uint64_t exits = 0;          ///< membership removals
  uint64_t updates = 0;        ///< in-membership value changes
  uint64_t repopulations = 0;  ///< full planner (re)populations
  /// Cumulative wall time (ns) this view spent in maintenance work:
  /// candidate re-evaluation plus planner (re)populations, including
  /// Recenter. Cost attribution for the scenario harness's per-maintain
  /// breakdown; timing only, never feeds back into maintenance decisions.
  uint64_t maintain_ns = 0;
};

class ViewCatalog;

/// One registered continuous query. Created via ViewCatalog::Register;
/// maintained by ViewCatalog::Maintain.
class LiveView {
 public:
  GAMEDB_DISALLOW_COPY(LiveView);

  const std::string& name() const { return def_.name; }
  const ViewDef& def() const { return def_; }

  // --- Membership reads --------------------------------------------------

  bool Contains(EntityId e) const { return members_.count(e.Raw()) > 0; }
  size_t size() const { return members_.size(); }

  /// Members in canonical order — the dense order of the query's smallest
  /// required table, exactly the order a fresh planner execution of the
  /// same query emits. Lazily re-sorted (O(m log m)) when the world moved
  /// under the cached order; safe for concurrent readers.
  const std::vector<EntityId>& Members() const;

  /// Unordered member iteration: no canonical sort, no allocation. The
  /// right read for consumers that don't need deterministic order (e.g.
  /// building an interest set); large views pay only O(m) here where
  /// Members() pays a re-sort after any driver-table write.
  template <typename Fn>
  void ForEachMember(Fn&& fn) const {
    for (uint64_t raw : members_) fn(EntityId::FromRaw(raw));
  }

  // --- Aggregate reads ---------------------------------------------------

  /// The aggregate evaluated with DynamicQuery terminal semantics: folds
  /// current member values in canonical order, so the result is
  /// bit-identical to the equivalent fresh Count/Sum/Min/Max/Avg call
  /// (floating-point addition is order-sensitive; the maintained running
  /// values below trade that exactness for O(1) reads). Min/Max/Avg on an
  /// empty fold return NotFound, as the fresh terminals do. NotSupported
  /// when the view has no aggregate.
  Result<double> Aggregate() const;

  /// O(1)/O(log n) incrementally-maintained reads (core/aggregate.h
  /// machinery). `count` is exact: membership size for count views,
  /// numeric contributions for folding aggregates.
  /// `running_sum`/`running_avg` can drift from Aggregate() by
  /// floating-point rounding accumulated across maintenance;
  /// `running_min`/`running_max` are exact over the current member
  /// multiset (maintained only for kMin/kMax views).
  int64_t count() const {
    switch (def_.aggregate) {
      case AggKind::kSum:
      case AggKind::kAvg:
      case AggKind::kMin:
      case AggKind::kMax:
        return running_.count;
      case AggKind::kNone:
      case AggKind::kCount:
        break;
    }
    return static_cast<int64_t>(members_.size());
  }
  double running_sum() const { return running_.sum; }
  double running_avg() const { return running_.Average(); }
  bool running_extrema_empty() const { return extrema_.empty(); }
  double running_min() const {
    GAMEDB_DCHECK(!extrema_.empty());
    return *extrema_.begin();
  }
  double running_max() const {
    GAMEDB_DCHECK(!extrema_.empty());
    return *extrema_.rbegin();
  }

  // --- Subscriptions -----------------------------------------------------

  using Callback = std::function<void(EntityId)>;

  /// Fired from maintenance (a sequential point): entity entered / left
  /// the view, or a tracked write touched a current member. Handlers run
  /// in deterministic delta order and must not mutate the World. Each
  /// returns a handle for the matching Remove* (subscribers whose owner
  /// can die before the view — TriggerSystem::WatchView — unsubscribe in
  /// their destructor, the core/aggregate.h pattern).
  size_t OnEnter(Callback cb) { return Add(&enter_cbs_, std::move(cb)); }
  size_t OnExit(Callback cb) { return Add(&exit_cbs_, std::move(cb)); }
  size_t OnUpdate(Callback cb) { return Add(&update_cbs_, std::move(cb)); }
  void RemoveOnEnter(size_t handle) { Remove(&enter_cbs_, handle); }
  void RemoveOnExit(size_t handle) { Remove(&exit_cbs_, handle); }
  void RemoveOnUpdate(size_t handle) { Remove(&update_cbs_, handle); }

  // --- Maintenance surface (ViewCatalog; tests) ---------------------------

  /// Moves the proximity term's center and repopulates through the planner
  /// (index-assisted), diffing against current membership so subscribers
  /// still see enter/exit deltas. InvalidArgument when the view has no
  /// proximity term. No-op (cheap) when the center is unchanged.
  Status Recenter(const Vec3& center);

  /// Full planner repopulation (diffs + fires callbacks). Register calls
  /// this once; Recenter reuses it.
  Status Repopulate();

  /// Component tables (type ids, deduplicated) this view must observe.
  const std::vector<uint32_t>& dependencies() const { return deps_; }

  const ViewStats& stats() const { return stats_; }

 private:
  friend class ViewCatalog;

  LiveView(World* world, QueryPlanHook* planner, ViewDef def)
      : world_(world), planner_(planner), def_(std::move(def)) {}

  /// Resolves names against the TypeRegistry; builds required/predicate
  /// lists mirroring DynamicQuery construction order.
  Status Resolve();

  /// Exactly DynamicQuery::Matches over the resolved constraints.
  bool Matches(EntityId e) const;

  /// Runs the view's query as a DynamicQuery through the planner hook.
  Status RunQuery(std::vector<EntityId>* out) const;

  /// The store a fresh execution would drive from (smallest required
  /// table, earliest in construction order on ties).
  const ComponentStore* CanonicalDriver() const;

  // Delta application (ViewCatalog::Maintain).
  void MarkCandidate(EntityId e);
  void ApplyCandidates();
  void Reevaluate(EntityId e);

  void Enter(EntityId e);
  void Exit(EntityId e);
  void Update(EntityId e);

  static size_t Add(std::vector<Callback>* cbs, Callback cb) {
    cbs->push_back(std::move(cb));
    return cbs->size() - 1;
  }
  static void Remove(std::vector<Callback>* cbs, size_t handle) {
    GAMEDB_DCHECK(handle < cbs->size());
    if (handle < cbs->size()) (*cbs)[handle] = nullptr;
  }

  /// Current aggregate contribution of `e`, if its agg field is numeric.
  bool AggValue(EntityId e, double* out) const;
  void AggAdd(EntityId e);
  void AggRemove(EntityId e);

  /// Resolves the stores behind required_/predicates_ once (ViewCatalog
  /// creates them before populating); Matches runs against these cached
  /// pointers instead of paying a map lookup per table per candidate.
  /// Store objects are stable for the life of a World.
  void CacheStores();

  World* world_;
  QueryPlanHook* planner_;
  ViewDef def_;

  // Resolved query (mirrors DynamicQuery's internal lists).
  std::vector<uint32_t> required_;  // construction order, with duplicates
  std::vector<DynamicQuery::Predicate> predicates_;
  std::vector<DynamicQuery::RadiusPredicate> radius_predicates_;
  std::vector<uint32_t> deps_;  // required_, deduplicated
  uint32_t agg_type_ = 0;
  const FieldInfo* agg_field_ = nullptr;

  // Resolved store pointers (CacheStores): dep_stores_ parallels deps_
  // (deduplicated, first-occurrence order — equivalent to required_ for
  // both the Contains pass and the smallest-table/earliest-tie driver
  // choice); the predicate/radius lists parallel their predicate vectors.
  std::vector<const ComponentStore*> dep_stores_;
  std::vector<const ComponentStore*> predicate_stores_;
  std::vector<const ComponentStore*> radius_stores_;
  const ComponentStore* agg_store_ = nullptr;

  // Membership.
  std::unordered_set<uint64_t> members_;

  // Canonical-order cache: valid while nothing structural moved in the
  // cached driver table and membership is unchanged.
  mutable std::shared_mutex sort_mu_;
  mutable std::vector<EntityId> sorted_;
  mutable const ComponentStore* sorted_driver_ = nullptr;
  mutable uint64_t sorted_driver_version_ = 0;
  mutable bool sorted_dirty_ = true;

  // Maintained aggregate state: running sum/count (O(1) reads), exact
  // extrema multiset, and each member's last folded-in contribution (the
  // "old value" a later exit/update must subtract).
  RunningSum running_;
  std::multiset<double> extrema_;
  std::unordered_map<uint64_t, double> contrib_;

  // Per-maintenance-round candidate set (deduplicated, first-mark order).
  std::vector<EntityId> candidates_;
  std::unordered_set<uint64_t> candidate_set_;

  std::vector<Callback> enter_cbs_;
  std::vector<Callback> exit_cbs_;
  std::vector<Callback> update_cbs_;

  ViewStats stats_;
};

}  // namespace gamedb::views
