#include "txn/bubbles.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <unordered_map>

#include "core/query.h"
#include "spatial/uniform_grid.h"

namespace gamedb::txn {

namespace {

/// Union-find over entity slots.
class DisjointSets {
 public:
  explicit DisjointSets(size_t n) : parent_(n), rank_(n, 0) {
    for (size_t i = 0; i < n; ++i) parent_[i] = static_cast<uint32_t>(i);
  }
  uint32_t Find(uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }
  void Union(uint32_t a, uint32_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return;
    if (rank_[a] < rank_[b]) std::swap(a, b);
    parent_[b] = a;
    if (rank_[a] == rank_[b]) ++rank_[a];
  }

 private:
  std::vector<uint32_t> parent_;
  std::vector<uint8_t> rank_;
};

}  // namespace

BubblePartition ComputeBubbles(World* world, const BubbleOptions& options) {
  BubblePartition out;
  const float tau = options.horizon_seconds;

  // Gather positioned entities with their motion-bound reach.
  struct Item {
    EntityId id;
    Vec3 pos;
    float reach;  // how far it can move within the horizon
  };
  std::vector<Item> items;
  uint32_t max_slot = 0;
  View<Position>(*world).Each([&](EntityId e, Position& p) {
    float reach = 0.0f;
    if (const Velocity* v = world->Get<Velocity>(e)) {
      reach = v->value.Length() * tau + 0.5f * v->max_accel * tau * tau;
    }
    items.push_back(Item{e, p.value, reach});
    max_slot = std::max(max_slot, e.index);
  });
  out.bubble_of_slot.assign(max_slot + 1, -1);
  if (items.empty()) return out;

  // Edge predicate: |p_i - p_j| <= r + reach_i + reach_j. Index the items
  // in a grid sized to the largest possible edge length so each item only
  // tests its neighborhood.
  float max_reach = 0.0f;
  for (const Item& it : items) max_reach = std::max(max_reach, it.reach);
  float max_edge = options.interaction_radius + 2.0f * max_reach;

  spatial::UniformGrid grid(
      spatial::UniformGridOptions{std::max(max_edge, 1e-3f)});
  std::unordered_map<uint64_t, uint32_t> item_of;  // entity raw -> item idx
  item_of.reserve(items.size());
  for (uint32_t i = 0; i < items.size(); ++i) {
    grid.Insert(items[i].id, Aabb::FromPoint(items[i].pos));
    item_of.emplace(items[i].id.Raw(), i);
  }

  DisjointSets sets(items.size());
  for (uint32_t i = 0; i < items.size(); ++i) {
    const Item& it = items[i];
    float budget = options.interaction_radius + it.reach + max_reach;
    grid.QueryRadius(it.pos, budget, [&](EntityId other, const Aabb&) {
      uint32_t j = item_of.at(other.Raw());
      if (j <= i) return;  // visit each pair once
      const Item& jt = items[j];
      float limit = options.interaction_radius + it.reach + jt.reach;
      if (it.pos.DistanceSquaredTo(jt.pos) <= limit * limit) {
        sets.Union(i, j);
      }
    });
  }

  // Densely number components.
  std::unordered_map<uint32_t, int32_t> bubble_ids;
  for (uint32_t i = 0; i < items.size(); ++i) {
    uint32_t root = sets.Find(i);
    auto [iter, inserted] =
        bubble_ids.emplace(root, static_cast<int32_t>(bubble_ids.size()));
    int32_t bubble = iter->second;
    out.bubble_of_slot[items[i].id.index] = bubble;
    if (inserted) out.sizes.push_back(0);
    ++out.sizes[static_cast<size_t>(bubble)];
  }
  out.bubble_count = out.sizes.size();
  for (uint32_t s : out.sizes) {
    out.max_bubble_size = std::max<size_t>(out.max_bubble_size, s);
  }
  return out;
}

ExecStats BubbleExecutor::ExecuteBatch(World* world,
                                       const std::vector<GameTxn>& batch,
                                       ThreadPool* pool) {
  if (batches_since_partition_ == 0 || last_partition_.sizes.empty()) {
    last_partition_ = ComputeBubbles(world, options_);
  }
  batches_since_partition_ =
      (batches_since_partition_ + 1) % std::max(1u, options_.repartition_interval);
  const BubblePartition& part = last_partition_;

  // Route transactions: single-bubble -> that bubble's queue, otherwise
  // cross-bubble serial queue.
  std::vector<std::vector<const GameTxn*>> queues(part.bubble_count);
  std::vector<const GameTxn*> cross;
  std::vector<EntityId> participants;
  for (const GameTxn& t : batch) {
    participants.clear();
    t.AppendReadSet(&participants);
    t.AppendWriteSet(&participants);
    int32_t bubble = -2;  // unset
    bool single = true;
    for (EntityId e : participants) {
      int32_t b = part.BubbleOf(e);
      if (b < 0) {
        single = false;
        break;
      }
      if (bubble == -2) {
        bubble = b;
      } else if (bubble != b) {
        single = false;
        break;
      }
    }
    if (single && bubble >= 0) {
      queues[static_cast<size_t>(bubble)].push_back(&t);
    } else {
      cross.push_back(&t);
    }
  }

  ExecStats stats;
  stats.bubble_count = part.bubble_count;
  stats.max_bubble_size = part.max_bubble_size;
  stats.cross_bubble_txns = cross.size();

  // Phase 1: bubbles in parallel, each serially, no locks at all.
  std::atomic<uint64_t> committed{0};
  pool->ParallelFor(queues.size(), [&](size_t begin, size_t end) {
    uint64_t local = 0;
    for (size_t q = begin; q < end; ++q) {
      for (const GameTxn* t : queues[q]) {
        ApplyTxn(world, *t);
        ++local;
      }
    }
    committed.fetch_add(local, std::memory_order_relaxed);
  });
  // Phase 2: cross-bubble transactions, serial.
  for (const GameTxn* t : cross) {
    ApplyTxn(world, *t);
    ++committed;
  }
  stats.committed = committed.load();
  return stats;
}

}  // namespace gamedb::txn
