#include "txn/lock_manager.h"

#include <algorithm>

namespace gamedb::txn {

namespace {

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

LockManager::LockManager(LockManagerOptions options)
    : locks_(RoundUpPow2(std::max<size_t>(options.stripes, 2))),
      mask_(locks_.size() - 1) {}

LockManager::MultiGuard::MultiGuard(LockManager* mgr,
                                    const std::vector<EntityId>& entities)
    : mgr_(mgr) {
  stripes_.reserve(entities.size());
  for (EntityId e : entities) stripes_.push_back(mgr->StripeOf(e));
  std::sort(stripes_.begin(), stripes_.end());
  stripes_.erase(std::unique(stripes_.begin(), stripes_.end()),
                 stripes_.end());
  for (size_t s : stripes_) mgr_->locks_[s].lock();
}

LockManager::MultiGuard::~MultiGuard() {
  // Release in reverse order (not required for correctness, conventional).
  for (auto it = stripes_.rbegin(); it != stripes_.rend(); ++it) {
    mgr_->locks_[*it].unlock();
  }
}

}  // namespace gamedb::txn
