#include "txn/executors.h"

#include <algorithm>

namespace gamedb::txn {

ExecStats GlobalLockExecutor::ExecuteBatch(World* world,
                                           const std::vector<GameTxn>& batch,
                                           ThreadPool* pool) {
  ExecStats total;
  std::mutex stats_mu;
  pool->ParallelFor(batch.size(), [&](size_t begin, size_t end) {
    ExecStats local;
    for (size_t i = begin; i < end; ++i) {
      std::lock_guard<std::mutex> lock(mu_);
      ApplyTxn(world, batch[i]);
      ++local.committed;
      ++local.lock_acquisitions;
    }
    std::lock_guard<std::mutex> lock(stats_mu);
    total.Merge(local);
  });
  return total;
}

ExecStats EntityLockExecutor::ExecuteBatch(World* world,
                                           const std::vector<GameTxn>& batch,
                                           ThreadPool* pool) {
  ExecStats total;
  std::mutex stats_mu;
  pool->ParallelFor(batch.size(), [&](size_t begin, size_t end) {
    ExecStats local;
    std::vector<EntityId> participants;
    for (size_t i = begin; i < end; ++i) {
      participants.clear();
      batch[i].AppendReadSet(&participants);
      batch[i].AppendWriteSet(&participants);
      LockManager::MultiGuard guard(&locks_, participants);
      ApplyTxn(world, batch[i]);
      ++local.committed;
      local.lock_acquisitions += guard.lock_count();
    }
    std::lock_guard<std::mutex> lock(stats_mu);
    total.Merge(local);
  });
  return total;
}

void OccExecutor::EnsureCapacity(uint32_t max_index) {
  if (max_index < words_.size()) return;
  // Grow between batches only (single-threaded point).
  std::vector<std::atomic<uint64_t>> grown(
      std::max<size_t>(max_index + 1, words_.size() * 2 + 64));
  for (size_t i = 0; i < words_.size(); ++i) {
    grown[i].store(words_[i].load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  }
  words_ = std::move(grown);
}

ExecStats OccExecutor::ExecuteBatch(World* world,
                                    const std::vector<GameTxn>& batch,
                                    ThreadPool* pool) {
  uint32_t max_index = 0;
  for (const GameTxn& t : batch) {
    std::vector<EntityId> rs;
    t.AppendReadSet(&rs);
    t.AppendWriteSet(&rs);
    for (EntityId e : rs) max_index = std::max(max_index, e.index);
  }
  EnsureCapacity(max_index);

  ExecStats total;
  std::mutex stats_mu;
  pool->ParallelFor(batch.size(), [&](size_t begin, size_t end) {
    ExecStats local;
    std::vector<EntityId> reads, writes;
    std::vector<std::pair<uint32_t, uint64_t>> read_versions;
    std::vector<uint32_t> write_slots;
    for (size_t i = begin; i < end; ++i) {
      const GameTxn& t = batch[i];
      reads.clear();
      writes.clear();
      t.AppendReadSet(&reads);
      t.AppendWriteSet(&writes);
      write_slots.clear();
      for (EntityId e : writes) write_slots.push_back(e.index);
      std::sort(write_slots.begin(), write_slots.end());
      write_slots.erase(
          std::unique(write_slots.begin(), write_slots.end()),
          write_slots.end());

      while (true) {
        // 1. Snapshot read versions.
        read_versions.clear();
        bool dirty = false;
        for (EntityId e : reads) {
          uint64_t w = words_[e.index].load(std::memory_order_acquire);
          if (w & kLockBit) {
            dirty = true;
            break;
          }
          read_versions.emplace_back(e.index, w);
        }
        if (dirty) {
          ++local.aborted;
          continue;
        }
        // 2. Lock write set (ascending index; spin).
        for (uint32_t slot : write_slots) {
          while (true) {
            uint64_t w = words_[slot].load(std::memory_order_relaxed);
            if (!(w & kLockBit) &&
                words_[slot].compare_exchange_weak(
                    w, w | kLockBit, std::memory_order_acquire)) {
              break;
            }
          }
          ++local.lock_acquisitions;
        }
        // 3. Validate reads: unchanged, and not locked by someone else.
        bool valid = true;
        for (const auto& [slot, seen] : read_versions) {
          uint64_t w = words_[slot].load(std::memory_order_acquire);
          bool locked_by_us =
              std::binary_search(write_slots.begin(), write_slots.end(), slot);
          if ((w & ~kLockBit) != (seen & ~kLockBit) ||
              ((w & kLockBit) && !locked_by_us)) {
            valid = false;
            break;
          }
        }
        if (!valid) {
          for (uint32_t slot : write_slots) {
            words_[slot].fetch_and(~kLockBit, std::memory_order_release);
          }
          ++local.aborted;
          continue;
        }
        // 4. Apply, bump versions, unlock.
        ApplyTxn(world, t);
        for (uint32_t slot : write_slots) {
          uint64_t w = words_[slot].load(std::memory_order_relaxed);
          words_[slot].store((w & ~kLockBit) + 2,
                             std::memory_order_release);
        }
        ++local.committed;
        break;
      }
    }
    std::lock_guard<std::mutex> lock(stats_mu);
    total.Merge(local);
  });
  return total;
}

}  // namespace gamedb::txn
