#pragma once

/// \file lock_manager.h
/// Striped per-entity lock table. Entities hash to one of 2^k mutex
/// stripes; acquiring a set of entities in ascending stripe order is
/// deadlock-free (total order), which works because game transactions
/// declare their participants up front.

#include <mutex>
#include <vector>

#include "common/macros.h"
#include "core/entity.h"

namespace gamedb::txn {

/// Options for LockManager.
struct LockManagerOptions {
  /// Number of mutex stripes (rounded up to a power of two).
  size_t stripes = 1024;
};

/// Hash-striped entity locks with ordered multi-acquire.
class LockManager {
 public:
  explicit LockManager(LockManagerOptions options = {});
  GAMEDB_DISALLOW_COPY(LockManager);

  /// RAII guard over a set of entities. Stripe indexes are sorted and
  /// deduplicated before locking, so concurrent guards never deadlock.
  class MultiGuard {
   public:
    MultiGuard(LockManager* mgr, const std::vector<EntityId>& entities);
    ~MultiGuard();
    GAMEDB_DISALLOW_COPY(MultiGuard);

    /// Number of distinct stripes locked (lock_acquisitions metric).
    size_t lock_count() const { return stripes_.size(); }

   private:
    LockManager* mgr_;
    std::vector<size_t> stripes_;  // sorted unique stripe indexes
  };

  size_t StripeOf(EntityId e) const {
    return (e.Raw() * 0x9E3779B97F4A7C15ull) & mask_;
  }
  size_t stripe_count() const { return locks_.size(); }

 private:
  friend class MultiGuard;
  std::vector<std::mutex> locks_;
  size_t mask_;
};

}  // namespace gamedb::txn
