#pragma once

/// \file executors.h
/// The classical concurrency-control engines E5 compares against causality
/// bubbles:
///  - GlobalLockExecutor: one big lock around the world — the simplest
///    correct MMO server loop, zero parallelism.
///  - EntityLockExecutor: conservative two-phase locking over the declared
///    participant set (sorted stripe acquisition, so no deadlocks).
///  - OccExecutor: optimistic validation in the style of Silo — version
///    words with embedded lock bits, read-set validation, retry on abort.

#include <atomic>
#include <mutex>

#include "txn/lock_manager.h"
#include "txn/txn.h"

namespace gamedb::txn {

/// Serializes every transaction under one mutex.
class GlobalLockExecutor final : public TxnExecutor {
 public:
  const char* Name() const override { return "global_lock"; }
  ExecStats ExecuteBatch(World* world, const std::vector<GameTxn>& batch,
                         ThreadPool* pool) override;

 private:
  std::mutex mu_;
};

/// Two-phase locking over pre-declared participants.
class EntityLockExecutor final : public TxnExecutor {
 public:
  explicit EntityLockExecutor(LockManagerOptions options = {})
      : locks_(options) {}
  const char* Name() const override { return "entity_2pl"; }
  ExecStats ExecuteBatch(World* world, const std::vector<GameTxn>& batch,
                         ThreadPool* pool) override;

 private:
  LockManager locks_;
};

/// Optimistic concurrency control with per-entity version+lock words.
///
/// Protocol per transaction (retry loop):
///   1. snapshot versions of the read set (fail fast if any is locked),
///   2. lock the write set (spin, ascending entity index),
///   3. validate the read-set versions are unchanged and unlocked-by-others,
///   4. apply, bump write versions, unlock.
class OccExecutor final : public TxnExecutor {
 public:
  const char* Name() const override { return "occ"; }
  ExecStats ExecuteBatch(World* world, const std::vector<GameTxn>& batch,
                         ThreadPool* pool) override;

 private:
  static constexpr uint64_t kLockBit = 1;

  void EnsureCapacity(uint32_t max_index);

  /// Version words indexed by entity slot; LSB is the lock bit.
  std::vector<std::atomic<uint64_t>> words_;
};

}  // namespace gamedb::txn
