#pragma once

/// \file txn.h
/// Game transactions. The tutorial's consistency section frames player
/// actions as transactions over the world database: conflicting actions
/// arrive at a very high rate, and "traditional approaches such as locking
/// transactions are often too slow for games". This module defines the
/// action vocabulary (attack / trade / move / area-of-effect) and the
/// executor interface; concrete engines live in executors.h and bubbles.h.
///
/// Paper: the transaction-processing / consistency section of the tutorial
/// (conflicting player actions at high rate, why classical locking
/// struggles, EVE-style partitioning as the games-industry answer).
///
/// Concurrency contract: transactions only mutate component *values* of
/// pre-declared participant entities (no structural inserts/removes), so an
/// executor guaranteeing per-entity mutual exclusion guarantees race
/// freedom. Value mutation goes through GetMutableUntracked — the table's
/// shared version counter is not touched from worker threads.

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "core/reflect.h"
#include "core/world.h"

namespace gamedb::txn {

/// Kind of player action.
enum class TxnType : uint8_t {
  kAttack,  // a damages b: b.Health.hp -= max(1, a.atk - b.def)
  kTrade,   // a gives `amount` gold to b (clamped to a's balance)
  kMove,    // a moves to `dest`
  kAoe,     // a damages every entity in `extra`
};

/// One transaction: participants are declared up front (games know the
/// targets of an action before executing it), which is what lets the bubble
/// executor route transactions and the locking executors sort lock
/// acquisition.
struct GameTxn {
  TxnType type = TxnType::kMove;
  EntityId a;                    // initiator (always written for kMove)
  EntityId b;                    // target (attack/trade)
  float amount = 0.0f;           // damage override / gold amount
  Vec3 dest;                     // move destination
  std::vector<EntityId> extra;   // aoe targets
  /// Synthetic CPU work units burned inside the transaction (hash rounds),
  /// modelling the combat-table / inventory-validation / script-hook work a
  /// real action performs. 0 = bare mutation; ~500 ≈ 1µs.
  uint32_t work_units = 0;

  /// Entities whose components this transaction may write.
  void AppendWriteSet(std::vector<EntityId>* out) const;
  /// Entities read (superset of writes for our vocabulary).
  void AppendReadSet(std::vector<EntityId>* out) const;
};

/// Applies `t` against `world` assuming the caller already guarantees
/// isolation on the participant set. All mutations are commutative where
/// game semantics allow (damage subtraction, gold transfer), so batch
/// outcomes are order-insensitive except kMove (last writer wins).
void ApplyTxn(World* world, const GameTxn& t);

/// Sequential post-batch publish pass: bumps row versions (Touch) on every
/// component store of every entity a batch wrote, making the parallel
/// executors' untracked writes visible to version-tracked consumers (delta
/// replication, dirty scans). Touch notifications carry no old value, so
/// this is incompatible with tables that have value-maintained aggregates
/// subscribed — servers wanting both use tracked single-threaded execution.
void PublishBatchDirty(World* world, const std::vector<GameTxn>& batch);

/// Executor metrics for E5/E6.
struct ExecStats {
  uint64_t committed = 0;
  uint64_t aborted = 0;       // OCC validation failures (before retry)
  uint64_t lock_acquisitions = 0;
  // Bubble executor extras:
  uint64_t bubble_count = 0;
  uint64_t max_bubble_size = 0;
  uint64_t cross_bubble_txns = 0;

  void Merge(const ExecStats& o) {
    committed += o.committed;
    aborted += o.aborted;
    lock_acquisitions += o.lock_acquisitions;
    bubble_count += o.bubble_count;
    max_bubble_size = std::max(max_bubble_size, o.max_bubble_size);
    cross_bubble_txns += o.cross_bubble_txns;
  }
};

/// A concurrency-control engine executing one tick's batch of transactions
/// with `pool`'s workers. Every transaction in the batch is applied exactly
/// once; engines differ in how they provide isolation.
class TxnExecutor {
 public:
  virtual ~TxnExecutor() = default;
  virtual const char* Name() const = 0;
  virtual ExecStats ExecuteBatch(World* world,
                                 const std::vector<GameTxn>& batch,
                                 ThreadPool* pool) = 0;
};

}  // namespace gamedb::txn
