#pragma once

/// \file bubbles.h
/// Causality bubbles — the EVE Online technique the tutorial describes:
/// "a continuous differential equation that takes into account the
/// acceleration of every space ship ... determines, for any given time
/// interval, which ships can move within range of each other; this way they
/// can dynamically partition the map into feasible units."
///
/// We realize the differential equation as its closed-form motion bound:
/// over a horizon of τ seconds, entity i can cover at most
///     reach_i = |v_i|·τ + ½·a_i·τ²
/// so entities i and j can possibly interact within the horizon iff
///     |p_i - p_j| ≤ r_interact + reach_i + reach_j.
/// Connected components of that proximity graph are the bubbles: any two
/// transactions whose participants live in different bubbles are guaranteed
/// conflict-free for the whole horizon and need no synchronization.

#include <vector>

#include "txn/txn.h"

namespace gamedb::txn {

/// Parameters of the motion-bound partitioner.
struct BubbleOptions {
  /// Base interaction radius (weapon/trade range).
  float interaction_radius = 10.0f;
  /// Horizon τ in seconds: how long the partition stays valid.
  float horizon_seconds = 1.0f;
  /// Batches executed per partition recomputation. The motion bound makes
  /// the partition valid for the whole horizon, so the EVE design amortizes
  /// one partitioning across every tick inside it. Safety does not depend
  /// on freshness (each entity maps to exactly one bubble, so transactions
  /// in different bubbles can never share a participant); staleness only
  /// pushes more transactions into the serial cross-bubble phase.
  uint32_t repartition_interval = 1;
};

/// A partition of the live entities into causality bubbles.
struct BubblePartition {
  /// bubble id per entity slot index; -1 for entities without Position.
  std::vector<int32_t> bubble_of_slot;
  size_t bubble_count = 0;
  size_t max_bubble_size = 0;
  /// Entity count per bubble.
  std::vector<uint32_t> sizes;

  /// Bubble of an entity, or -1.
  int32_t BubbleOf(EntityId e) const {
    if (e.index >= bubble_of_slot.size()) return -1;
    return bubble_of_slot[e.index];
  }
};

/// Partitions entities carrying Position (+ optional Velocity for motion
/// bounds; entities without Velocity are treated as static).
BubblePartition ComputeBubbles(World* world, const BubbleOptions& options);

/// Executor that routes each transaction to the bubble containing all of
/// its participants; bubbles execute their queues serially but in parallel
/// with each other, lock-free. Transactions spanning bubbles (or touching
/// unpositioned entities) fall back to a serial cross-bubble phase — the
/// fraction of those is the partitioner's quality metric.
class BubbleExecutor final : public TxnExecutor {
 public:
  explicit BubbleExecutor(BubbleOptions options = {}) : options_(options) {}

  const char* Name() const override { return "causality_bubbles"; }
  ExecStats ExecuteBatch(World* world, const std::vector<GameTxn>& batch,
                         ThreadPool* pool) override;

  /// The partition computed for the last batch (benchmark introspection).
  const BubblePartition& last_partition() const { return last_partition_; }

 private:
  BubbleOptions options_;
  BubblePartition last_partition_;
  uint32_t batches_since_partition_ = 0;
};

}  // namespace gamedb::txn
