#include "txn/workload.h"

#include <algorithm>

#include "core/query.h"

namespace gamedb::txn {

MmoWorkload::MmoWorkload(const WorkloadOptions& options)
    : options_(options),
      rng_(options.seed),
      zipf_(std::max<uint64_t>(options.num_entities, 1),
            options.hotspot_alpha) {
  RegisterStandardComponents();
  const float extent = options_.area_extent;
  // The hotspot "town" occupies a small square in one corner.
  const float town = std::max(extent * 0.05f, options_.interaction_radius);
  for (uint32_t i = 0; i < options_.num_entities; ++i) {
    EntityId e = world_.Create();
    entities_.push_back(e);

    Vec3 pos;
    bool clustered = rng_.NextDouble() < options_.clustered_fraction;
    if (clustered) {
      pos = {rng_.NextFloat(0, town), 0, rng_.NextFloat(0, town)};
    } else {
      pos = {rng_.NextFloat(0, extent), 0, rng_.NextFloat(0, extent)};
    }
    world_.Set(e, Position{pos});

    Velocity vel;
    vel.value = rng_.NextDirXZ() * rng_.NextFloat(0, options_.max_speed);
    vel.max_accel = rng_.NextFloat(0, options_.max_accel);
    world_.Set(e, vel);

    world_.Set(e, Health{100.0f, 100.0f});
    Combat combat;
    combat.attack = rng_.NextFloat(5.0f, 15.0f);
    combat.defense = rng_.NextFloat(0.0f, 5.0f);
    combat.range = options_.interaction_radius;
    world_.Set(e, combat);

    Actor actor;
    actor.account_id = i;
    actor.gold = 1000;
    actor.is_player = (i % 4 != 0);  // 3:1 players to NPCs
    world_.Set(e, actor);
    world_.Set(e, Faction{static_cast<int32_t>(i % 2)});
  }
}

EntityId MmoWorkload::PickEntity(Rng* rng) {
  // Zipf rank 0 = hottest. Entities are already shuffled by construction
  // order, so rank order is fine as identity.
  uint64_t idx = options_.hotspot_alpha > 0.0
                     ? zipf_.Next(*rng)
                     : rng->NextBounded(entities_.size());
  return entities_[idx];
}

std::vector<EntityId> MmoWorkload::NeighborsOf(EntityId e,
                                               float radius) const {
  std::vector<EntityId> out;
  const Position* p = world_.Get<Position>(e);
  if (p == nullptr) return out;
  float r2 = radius * radius;
  const auto* table = world_.TableIfExists<Position>();
  table->ForEach([&](EntityId other, const Position& op) {
    if (other == e) return;
    if (op.value.DistanceSquaredTo(p->value) <= r2) out.push_back(other);
  });
  return out;
}

std::vector<GameTxn> MmoWorkload::NextBatch() {
  std::vector<GameTxn> batch;
  auto count = static_cast<size_t>(options_.txns_per_entity *
                                   static_cast<float>(entities_.size()));
  batch.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    EntityId a = PickEntity(&rng_);
    double roll = rng_.NextDouble();
    GameTxn t;
    t.a = a;
    t.work_units = options_.txn_work_units;
    if (roll < options_.attack_fraction) {
      auto neighbors = NeighborsOf(a, options_.interaction_radius);
      if (!neighbors.empty()) {
        t.type = TxnType::kAttack;
        t.b = neighbors[rng_.NextBounded(neighbors.size())];
        batch.push_back(std::move(t));
        continue;
      }
      // No one in range: fall through to a move toward someone.
    } else if (roll < options_.attack_fraction + options_.trade_fraction) {
      auto neighbors = NeighborsOf(a, options_.interaction_radius);
      if (!neighbors.empty()) {
        t.type = TxnType::kTrade;
        t.b = neighbors[rng_.NextBounded(neighbors.size())];
        t.amount = static_cast<float>(rng_.NextInt(1, 50));
        batch.push_back(std::move(t));
        continue;
      }
    }
    t.type = TxnType::kMove;
    const Position* p = world_.Get<Position>(a);
    Vec3 step = rng_.NextDirXZ() * rng_.NextFloat(0, options_.max_speed);
    t.dest = (p ? p->value : Vec3{}) + step;
    t.dest.x = std::clamp(t.dest.x, 0.0f, options_.area_extent);
    t.dest.z = std::clamp(t.dest.z, 0.0f, options_.area_extent);
    batch.push_back(std::move(t));
  }
  return batch;
}

void MmoWorkload::AdvancePositions(float dt) {
  // Patch (not in-place View mutation) so the movement is visible to
  // version-tracked consumers: delta replication, aggregates, dirty scans.
  for (EntityId e : entities_) {
    const Velocity* v = world_.Get<Velocity>(e);
    if (v == nullptr) continue;
    Vec3 step = v->value * dt;
    bool bounce_x = false, bounce_z = false;
    world_.Patch<Position>(e, [&](Position& p) {
      p.value += step;
      if (p.value.x < 0 || p.value.x > options_.area_extent) {
        bounce_x = true;
        p.value.x = std::clamp(p.value.x, 0.0f, options_.area_extent);
      }
      if (p.value.z < 0 || p.value.z > options_.area_extent) {
        bounce_z = true;
        p.value.z = std::clamp(p.value.z, 0.0f, options_.area_extent);
      }
    });
    if (bounce_x || bounce_z) {
      world_.Patch<Velocity>(e, [&](Velocity& vel) {
        if (bounce_x) vel.value.x = -vel.value.x;
        if (bounce_z) vel.value.z = -vel.value.z;
      });
    }
  }
}

int64_t MmoWorkload::TotalGold() const {
  int64_t total = 0;
  const auto* table = world_.TableIfExists<Actor>();
  if (table != nullptr) {
    table->ForEach([&](EntityId, const Actor& a) { total += a.gold; });
  }
  return total;
}

double MmoWorkload::TotalHp() const {
  double total = 0;
  const auto* table = world_.TableIfExists<Health>();
  if (table != nullptr) {
    table->ForEach([&](EntityId, const Health& h) { total += h.hp; });
  }
  return total;
}

}  // namespace gamedb::txn
