#pragma once

/// \file workload.h
/// Synthetic MMO shard workloads (the "simulated substitution" for real
/// player traffic — see docs/ARCHITECTURE.md "Simulated substitutions"). Populates a world with players and
/// NPCs, then generates per-tick transaction batches whose contention
/// profile is controlled by spatial density and a Zipf hotspot parameter
/// (crowds around bosses and market hubs).

#include <vector>

#include "common/rng.h"
#include "txn/txn.h"

namespace gamedb::txn {

/// Workload shape parameters.
struct WorkloadOptions {
  uint32_t num_entities = 1000;
  float area_extent = 500.0f;      // world is [0, extent)^2 on the XZ plane
  float max_speed = 5.0f;          // |velocity| upper bound
  float max_accel = 2.0f;
  float interaction_radius = 10.0f;

  /// Per-tick transactions as a fraction of entity count.
  float txns_per_entity = 1.0f;
  /// Transaction mix (fractions; the remainder becomes kMove).
  float attack_fraction = 0.5f;
  float trade_fraction = 0.2f;
  /// Zipf skew of target selection: 0 = uniform partners, ~1 = hotspots.
  double hotspot_alpha = 0.0;
  /// Synthetic per-transaction CPU work (see GameTxn::work_units).
  uint32_t txn_work_units = 0;
  /// Fraction of entities clustered into a dense "town" hotspot region.
  float clustered_fraction = 0.0f;

  uint64_t seed = 20090629;  // SIGMOD'09 opening day
};

/// A populated world plus the id list the generator draws from.
class MmoWorkload {
 public:
  explicit MmoWorkload(const WorkloadOptions& options);

  World& world() { return world_; }
  const std::vector<EntityId>& entities() const { return entities_; }
  const WorkloadOptions& options() const { return options_; }

  /// Generates one tick's batch. Attack/trade targets are drawn from the
  /// initiator's spatial neighborhood (within interaction_radius) so the
  /// conflict structure matches the world's geometry; the Zipf parameter
  /// skews initiator choice toward the hotspot cluster.
  std::vector<GameTxn> NextBatch();

  /// Advances positions by `dt` seconds of straight-line motion with
  /// reflective walls (keeps bubbles evolving between batches).
  void AdvancePositions(float dt);

  /// Invariant probes used by tests and benches.
  int64_t TotalGold() const;
  double TotalHp() const;

 private:
  EntityId PickEntity(Rng* rng);
  std::vector<EntityId> NeighborsOf(EntityId e, float radius) const;

  WorkloadOptions options_;
  World world_;
  std::vector<EntityId> entities_;
  Rng rng_;
  ZipfGenerator zipf_;
};

}  // namespace gamedb::txn
