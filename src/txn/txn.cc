#include "txn/txn.h"

#include <algorithm>

namespace gamedb::txn {

namespace {
/// Sink for the synthetic transaction work (volatile defeats DCE).
volatile uint64_t benchmark_sink_ = 0;
}  // namespace

void GameTxn::AppendWriteSet(std::vector<EntityId>* out) const {
  switch (type) {
    case TxnType::kAttack:
      out->push_back(b);
      break;
    case TxnType::kTrade:
      out->push_back(a);
      out->push_back(b);
      break;
    case TxnType::kMove:
      out->push_back(a);
      break;
    case TxnType::kAoe:
      for (EntityId e : extra) out->push_back(e);
      break;
  }
}

void GameTxn::AppendReadSet(std::vector<EntityId>* out) const {
  out->push_back(a);
  if (type == TxnType::kAttack || type == TxnType::kTrade) {
    out->push_back(b);
  }
  for (EntityId e : extra) out->push_back(e);
}

namespace {

void Damage(World* world, EntityId attacker, EntityId target,
            float override_amount) {
  const Combat* atk = world->Get<Combat>(attacker);
  Health* hp = world->GetMutableUntracked<Health>(target);
  if (hp == nullptr) return;  // target despawned or has no health
  float dmg = override_amount;
  if (dmg <= 0.0f && atk != nullptr) {
    const Combat* def = world->Get<Combat>(target);
    dmg = std::max(1.0f, atk->attack - (def ? def->defense : 0.0f));
  }
  if (dmg <= 0.0f) dmg = 1.0f;
  hp->hp -= dmg;
}

}  // namespace

void ApplyTxn(World* world, const GameTxn& t) {
  if (t.work_units > 0) {
    // Deterministic busy work standing in for combat-resolution logic.
    uint64_t h = 1469598103934665603ull ^ t.a.Raw();
    for (uint32_t i = 0; i < t.work_units; ++i) {
      h = (h ^ i) * 1099511628211ull;
    }
    benchmark_sink_ = h;  // defeat dead-code elimination
  }
  switch (t.type) {
    case TxnType::kAttack:
      Damage(world, t.a, t.b, t.amount);
      return;
    case TxnType::kTrade: {
      Actor* from = world->GetMutableUntracked<Actor>(t.a);
      Actor* to = world->GetMutableUntracked<Actor>(t.b);
      if (from == nullptr || to == nullptr) return;
      int64_t amount = std::min<int64_t>(static_cast<int64_t>(t.amount),
                                         from->gold);
      if (amount <= 0) return;
      from->gold -= amount;
      to->gold += amount;
      return;
    }
    case TxnType::kMove: {
      Position* pos = world->GetMutableUntracked<Position>(t.a);
      if (pos != nullptr) pos->value = t.dest;
      return;
    }
    case TxnType::kAoe:
      for (EntityId target : t.extra) {
        Damage(world, t.a, target, t.amount);
      }
      return;
  }
}

void PublishBatchDirty(World* world, const std::vector<GameTxn>& batch) {
  std::vector<EntityId> writes;
  for (const GameTxn& t : batch) {
    writes.clear();
    t.AppendWriteSet(&writes);
    for (EntityId e : writes) {
      world->ForEachStore([&](const TypeInfo&, ComponentStore& store) {
        if (store.Contains(e)) store.Touch(e);
      });
    }
  }
}

}  // namespace gamedb::txn
