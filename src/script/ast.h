#pragma once

/// \file ast.h
/// GSL abstract syntax tree. Nodes use a tagged-struct representation (one
/// Expr/Stmt struct each with a kind tag) — compact, cache-friendly, and
/// easy for the analyzer and interpreter to switch over.

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "script/token.h"
#include "script/value.h"

namespace gamedb::script {

enum class ExprKind : uint8_t {
  kLiteral,  // literal -> value
  kVar,      // name
  kUnary,    // op, args[0]
  kBinary,   // op, args[0], args[1]
  kCall,     // name, args...
  kList,     // args... (list literal)
};

/// Expression node. `line`/`col` are the 1-based source position of the
/// token that introduced the node (diagnostics anchor here).
struct Expr {
  ExprKind kind;
  int line = 0;
  int col = 0;
  Value literal;
  std::string name;
  TokenType op = TokenType::kEof;
  std::vector<std::unique_ptr<Expr>> args;
};

enum class StmtKind : uint8_t {
  kLet,       // name, expr
  kAssign,    // name, expr
  kExpr,      // expr (expression statement, usually a call)
  kIf,        // expr (cond), body (then), else_body
  kWhile,     // expr (cond), body
  kForeach,   // name (loop var), expr (iterable), body
  kReturn,    // expr (optional)
  kBreak,
  kContinue,
  kFn,        // name, params, body
  kOn,        // name (event), params, body
};

/// Statement node. `line`/`col` as on Expr.
struct Stmt {
  StmtKind kind;
  int line = 0;
  int col = 0;
  std::string name;
  std::unique_ptr<Expr> expr;
  std::vector<std::unique_ptr<Stmt>> body;
  std::vector<std::unique_ptr<Stmt>> else_body;
  std::vector<std::string> params;
};

/// A parsed script: top-level statements (the script's "main"), named
/// functions, and event handlers.
struct Script {
  std::string name = "<script>";
  std::vector<std::unique_ptr<Stmt>> top_level;
  /// Function declarations by name (pointers into the owned statements).
  std::unordered_map<std::string, const Stmt*> functions;
  /// Event handlers in declaration order.
  std::vector<const Stmt*> handlers;
  /// Owned declaration statements (functions/handlers live here).
  std::vector<std::unique_ptr<Stmt>> decls;
};

/// Node counters used by the analyzer and tests.
struct AstStats {
  size_t expr_nodes = 0;
  size_t stmt_nodes = 0;
  size_t loops = 0;       // while + foreach
  size_t functions = 0;
  size_t handlers = 0;
};

/// Walks the script and tallies node statistics.
AstStats CountNodes(const Script& script);

}  // namespace gamedb::script
