#include "script/parser.h"

#include "common/string_util.h"
#include "script/lexer.h"

namespace gamedb::script {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Script> Run(std::string name) {
    Script script;
    script.name = std::move(name);
    while (!Check(TokenType::kEof)) {
      if (Check(TokenType::kFn) || Check(TokenType::kOn)) {
        GAMEDB_ASSIGN_OR_RETURN(auto decl, ParseDecl());
        const Stmt* raw = decl.get();
        if (raw->kind == StmtKind::kFn) {
          if (script.functions.count(raw->name)) {
            return Err(raw->line, "duplicate function '" + raw->name + "'");
          }
          script.functions.emplace(raw->name, raw);
        } else {
          script.handlers.push_back(raw);
        }
        script.decls.push_back(std::move(decl));
      } else {
        GAMEDB_ASSIGN_OR_RETURN(auto stmt, ParseStmt());
        script.top_level.push_back(std::move(stmt));
      }
    }
    return script;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Prev() const { return tokens_[pos_ - 1]; }
  bool Check(TokenType t) const { return Peek().type == t; }
  bool Match(TokenType t) {
    if (!Check(t)) return false;
    ++pos_;
    return true;
  }
  Status Err(int line, const std::string& msg) const {
    return Status::ParseError(StringFormat("line %d: %s", line, msg.c_str()));
  }
  Status Expect(TokenType t) {
    if (Match(t)) return Status::OK();
    return Err(Peek().line, std::string("expected ") + TokenTypeName(t) +
                                ", got " + TokenTypeName(Peek().type));
  }

  Result<std::unique_ptr<Stmt>> ParseDecl() {
    bool is_fn = Match(TokenType::kFn);
    if (!is_fn) GAMEDB_RETURN_NOT_OK(Expect(TokenType::kOn));
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = is_fn ? StmtKind::kFn : StmtKind::kOn;
    stmt->line = Prev().line;
    stmt->col = Prev().column;
    GAMEDB_RETURN_NOT_OK(Expect(TokenType::kIdent));
    stmt->name = Prev().text;
    GAMEDB_RETURN_NOT_OK(Expect(TokenType::kLParen));
    if (!Check(TokenType::kRParen)) {
      do {
        GAMEDB_RETURN_NOT_OK(Expect(TokenType::kIdent));
        stmt->params.push_back(Prev().text);
      } while (Match(TokenType::kComma));
    }
    GAMEDB_RETURN_NOT_OK(Expect(TokenType::kRParen));
    GAMEDB_ASSIGN_OR_RETURN(stmt->body, ParseBlock());
    return stmt;
  }

  Result<std::vector<std::unique_ptr<Stmt>>> ParseBlock() {
    GAMEDB_RETURN_NOT_OK(Expect(TokenType::kLBrace));
    std::vector<std::unique_ptr<Stmt>> body;
    while (!Check(TokenType::kRBrace)) {
      if (Check(TokenType::kEof)) {
        return Err(Peek().line, "unterminated block");
      }
      GAMEDB_ASSIGN_OR_RETURN(auto stmt, ParseStmt());
      body.push_back(std::move(stmt));
    }
    GAMEDB_RETURN_NOT_OK(Expect(TokenType::kRBrace));
    return body;
  }

  Result<std::unique_ptr<Stmt>> ParseStmt() {
    auto stmt = std::make_unique<Stmt>();
    stmt->line = Peek().line;
    stmt->col = Peek().column;

    if (Match(TokenType::kLet)) {
      stmt->kind = StmtKind::kLet;
      GAMEDB_RETURN_NOT_OK(Expect(TokenType::kIdent));
      stmt->name = Prev().text;
      GAMEDB_RETURN_NOT_OK(Expect(TokenType::kAssign));
      GAMEDB_ASSIGN_OR_RETURN(stmt->expr, ParseExpr());
      return stmt;
    }
    if (Match(TokenType::kIf)) {
      stmt->kind = StmtKind::kIf;
      GAMEDB_ASSIGN_OR_RETURN(stmt->expr, ParseExpr());
      GAMEDB_ASSIGN_OR_RETURN(stmt->body, ParseBlock());
      if (Match(TokenType::kElse)) {
        if (Check(TokenType::kIf)) {
          GAMEDB_ASSIGN_OR_RETURN(auto elif, ParseStmt());
          stmt->else_body.push_back(std::move(elif));
        } else {
          GAMEDB_ASSIGN_OR_RETURN(stmt->else_body, ParseBlock());
        }
      }
      return stmt;
    }
    if (Match(TokenType::kWhile)) {
      stmt->kind = StmtKind::kWhile;
      GAMEDB_ASSIGN_OR_RETURN(stmt->expr, ParseExpr());
      GAMEDB_ASSIGN_OR_RETURN(stmt->body, ParseBlock());
      return stmt;
    }
    if (Match(TokenType::kForeach)) {
      stmt->kind = StmtKind::kForeach;
      GAMEDB_RETURN_NOT_OK(Expect(TokenType::kIdent));
      stmt->name = Prev().text;
      GAMEDB_RETURN_NOT_OK(Expect(TokenType::kIn));
      GAMEDB_ASSIGN_OR_RETURN(stmt->expr, ParseExpr());
      GAMEDB_ASSIGN_OR_RETURN(stmt->body, ParseBlock());
      return stmt;
    }
    if (Match(TokenType::kReturn)) {
      stmt->kind = StmtKind::kReturn;
      // Optional value: anything that can start an expression.
      if (!Check(TokenType::kRBrace) && !Check(TokenType::kEof)) {
        GAMEDB_ASSIGN_OR_RETURN(stmt->expr, ParseExpr());
      }
      return stmt;
    }
    if (Match(TokenType::kBreak)) {
      stmt->kind = StmtKind::kBreak;
      return stmt;
    }
    if (Match(TokenType::kContinue)) {
      stmt->kind = StmtKind::kContinue;
      return stmt;
    }
    // Assignment: IDENT '=' expr (lookahead two tokens).
    if (Check(TokenType::kIdent) &&
        tokens_[pos_ + 1].type == TokenType::kAssign) {
      stmt->kind = StmtKind::kAssign;
      stmt->name = Peek().text;
      pos_ += 2;
      GAMEDB_ASSIGN_OR_RETURN(stmt->expr, ParseExpr());
      return stmt;
    }
    stmt->kind = StmtKind::kExpr;
    GAMEDB_ASSIGN_OR_RETURN(stmt->expr, ParseExpr());
    return stmt;
  }

  Result<std::unique_ptr<Expr>> ParseExpr() { return ParseOr(); }

  Result<std::unique_ptr<Expr>> ParseBinaryChain(
      Result<std::unique_ptr<Expr>> (Parser::*next)(),
      std::initializer_list<TokenType> ops) {
    GAMEDB_ASSIGN_OR_RETURN(auto lhs, (this->*next)());
    while (true) {
      bool matched = false;
      for (TokenType op : ops) {
        if (Match(op)) {
          auto node = std::make_unique<Expr>();
          node->kind = ExprKind::kBinary;
          node->line = Prev().line;
          node->col = Prev().column;
          node->op = op;
          GAMEDB_ASSIGN_OR_RETURN(auto rhs, (this->*next)());
          node->args.push_back(std::move(lhs));
          node->args.push_back(std::move(rhs));
          lhs = std::move(node);
          matched = true;
          break;
        }
      }
      if (!matched) return lhs;
    }
  }

  Result<std::unique_ptr<Expr>> ParseOr() {
    return ParseBinaryChain(&Parser::ParseAnd, {TokenType::kOr});
  }
  Result<std::unique_ptr<Expr>> ParseAnd() {
    return ParseBinaryChain(&Parser::ParseEq, {TokenType::kAnd});
  }
  Result<std::unique_ptr<Expr>> ParseEq() {
    return ParseBinaryChain(&Parser::ParseCmp,
                            {TokenType::kEq, TokenType::kNe});
  }
  Result<std::unique_ptr<Expr>> ParseCmp() {
    return ParseBinaryChain(&Parser::ParseAdd,
                            {TokenType::kLt, TokenType::kLe, TokenType::kGt,
                             TokenType::kGe});
  }
  Result<std::unique_ptr<Expr>> ParseAdd() {
    return ParseBinaryChain(&Parser::ParseMul,
                            {TokenType::kPlus, TokenType::kMinus});
  }
  Result<std::unique_ptr<Expr>> ParseMul() {
    return ParseBinaryChain(
        &Parser::ParseUnary,
        {TokenType::kStar, TokenType::kSlash, TokenType::kPercent});
  }

  Result<std::unique_ptr<Expr>> ParseUnary() {
    if (Match(TokenType::kMinus) || Match(TokenType::kNot)) {
      auto node = std::make_unique<Expr>();
      node->kind = ExprKind::kUnary;
      node->line = Prev().line;
      node->col = Prev().column;
      node->op = Prev().type;
      GAMEDB_ASSIGN_OR_RETURN(auto operand, ParseUnary());
      node->args.push_back(std::move(operand));
      return node;
    }
    return ParsePrimary();
  }

  Result<std::unique_ptr<Expr>> ParsePrimary() {
    auto node = std::make_unique<Expr>();
    node->line = Peek().line;
    node->col = Peek().column;
    if (Match(TokenType::kNumber)) {
      node->kind = ExprKind::kLiteral;
      node->literal = Value(Prev().number);
      return node;
    }
    if (Match(TokenType::kString)) {
      node->kind = ExprKind::kLiteral;
      node->literal = Value(Prev().text);
      return node;
    }
    if (Match(TokenType::kTrue)) {
      node->kind = ExprKind::kLiteral;
      node->literal = Value(true);
      return node;
    }
    if (Match(TokenType::kFalse)) {
      node->kind = ExprKind::kLiteral;
      node->literal = Value(false);
      return node;
    }
    if (Match(TokenType::kNil)) {
      node->kind = ExprKind::kLiteral;
      node->literal = Value::Nil();
      return node;
    }
    if (Match(TokenType::kLBracket)) {
      node->kind = ExprKind::kList;
      if (!Check(TokenType::kRBracket)) {
        do {
          GAMEDB_ASSIGN_OR_RETURN(auto item, ParseExpr());
          node->args.push_back(std::move(item));
        } while (Match(TokenType::kComma));
      }
      GAMEDB_RETURN_NOT_OK(Expect(TokenType::kRBracket));
      return node;
    }
    if (Match(TokenType::kLParen)) {
      GAMEDB_ASSIGN_OR_RETURN(auto inner, ParseExpr());
      GAMEDB_RETURN_NOT_OK(Expect(TokenType::kRParen));
      return inner;
    }
    if (Match(TokenType::kIdent)) {
      node->name = Prev().text;
      if (Match(TokenType::kLParen)) {
        node->kind = ExprKind::kCall;
        if (!Check(TokenType::kRParen)) {
          do {
            GAMEDB_ASSIGN_OR_RETURN(auto arg, ParseExpr());
            node->args.push_back(std::move(arg));
          } while (Match(TokenType::kComma));
        }
        GAMEDB_RETURN_NOT_OK(Expect(TokenType::kRParen));
        return node;
      }
      node->kind = ExprKind::kVar;
      return node;
    }
    return Err(Peek().line, std::string("unexpected ") +
                                TokenTypeName(Peek().type));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Script> Parse(std::string_view source, std::string name) {
  GAMEDB_ASSIGN_OR_RETURN(auto tokens, Lex(source));
  Parser parser(std::move(tokens));
  return parser.Run(std::move(name));
}

}  // namespace gamedb::script
