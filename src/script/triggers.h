#pragma once

/// \file triggers.h
/// Event trigger system: the data-driven "specify event triggers" facility
/// the tutorial's content-creation section describes. Game code (or other
/// scripts) fire named events; GSL `on <event>(...)` handlers run in
/// response. Events fired from inside handlers are queued and processed
/// breadth-first with a cascade-depth limit, so designer content cannot
/// recurse the engine to death.

#include <deque>
#include <string>
#include <vector>

#include "common/status.h"
#include "script/interpreter.h"

namespace gamedb::views {
class LiveView;
}  // namespace gamedb::views

namespace gamedb::script {

/// Options for TriggerSystem.
struct TriggerOptions {
  /// Maximum cascade depth: an event fired by a handler at depth d runs at
  /// depth d+1; events beyond the limit are dropped and counted.
  uint32_t max_cascade_depth = 8;
  /// Maximum queued events per pump (backstop against event storms).
  size_t max_queue = 4096;
};

/// Statistics for observability and the E10/E11 harnesses.
struct TriggerStats {
  uint64_t fired = 0;         // events enqueued by hosts or handlers
  uint64_t handled = 0;       // handler invocations completed
  uint64_t dropped_depth = 0; // events dropped at the cascade limit
  uint64_t dropped_queue = 0; // events dropped because the queue was full
  uint64_t errors = 0;        // handler errors (first error is returned)
};

/// Queued-event dispatcher over an Interpreter.
class TriggerSystem {
 public:
  explicit TriggerSystem(Interpreter* interp, TriggerOptions options = {});
  /// Unsubscribes every WatchView registration (views fired after this
  /// system is gone must not call into it).
  ~TriggerSystem();

  /// Enqueues an event at cascade depth 0.
  void Fire(const std::string& event, std::vector<Value> args);

  /// Enqueues an event from inside a handler (inherits depth + 1). Hosts
  /// normally expose this to scripts via the `fire` builtin that
  /// InstallFireBuiltin registers.
  void FireFrom(uint32_t parent_depth, const std::string& event,
                std::vector<Value> args);

  /// Processes the queue until empty. Returns the first handler error (but
  /// continues processing the rest of the queue regardless).
  Status Pump();

  /// Registers the `fire("event", args...)` builtin on the interpreter,
  /// wired to this system with correct cascade depths.
  void InstallFireBuiltin();

  /// Subscribes to a LiveView (views/view.h) so GSL `on <event>(e)`
  /// handlers run on membership changes: entering entities enqueue
  /// `enter_event`, leaving ones `exit_event`, tracked writes to current
  /// members `update_event` — each with the entity as the only argument;
  /// an empty event name skips that transition. Events enqueue at cascade
  /// depth 0 during view maintenance (a sequential point) and run at the
  /// next Pump(), where handlers may mutate the world — the maintenance
  /// phase itself stays read-only. The destructor unsubscribes, so destroy
  /// this system while the watched view is still registered (the
  /// core/aggregate.h subscriber ordering).
  void WatchView(views::LiveView* view, std::string enter_event,
                 std::string exit_event, std::string update_event = "");

  const TriggerStats& stats() const { return stats_; }
  size_t pending() const { return queue_.size(); }

 private:
  struct Pending {
    std::string event;
    std::vector<Value> args;
    uint32_t depth;
  };

  /// One WatchView registration (handles into the view's callback lists).
  struct Watch {
    views::LiveView* view;
    size_t enter = kNoHandle;
    size_t exit = kNoHandle;
    size_t update = kNoHandle;
  };
  static constexpr size_t kNoHandle = static_cast<size_t>(-1);

  Interpreter* interp_;
  TriggerOptions options_;
  std::deque<Pending> queue_;
  std::vector<Watch> watches_;
  TriggerStats stats_;
  uint32_t current_depth_ = 0;  // depth of the event being handled
};

}  // namespace gamedb::script
