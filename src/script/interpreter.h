#pragma once

/// \file interpreter.h
/// Tree-walking GSL interpreter with *fuel accounting*: every AST node
/// evaluated burns one unit of fuel and the interpreter hard-stops with
/// ResourceExhausted when the per-invocation budget is gone. Fuel is how a
/// game engine keeps a designer's script from eating the frame — and the
/// metric E10 reports.
///
/// Paper: the game-scripting-languages section — SGL-style declarative
/// scripting for designers, with the industry practice of restricting
/// language power (analyzer.h) to bound per-frame cost.

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "script/analyzer.h"
#include "script/ast.h"
#include "script/value.h"

namespace gamedb::script {

class Interpreter;

/// Native (C++-implemented) builtin function.
using NativeFn =
    std::function<Result<Value>(std::vector<Value>&, Interpreter&)>;

/// Interpreter configuration.
struct InterpreterOptions {
  /// Fuel budget per top-level invocation (Run / CallFunction / event
  /// dispatch). ~1 unit per AST node touched.
  uint64_t fuel_per_invocation = 1'000'000;
  /// Maximum script-function call depth.
  uint32_t max_call_depth = 64;
  /// Restriction level scripts must satisfy at load.
  Restriction restriction = Restriction::kFull;
  /// Seed for the script-visible random() builtin.
  uint64_t rng_seed = 0xC0FFEE;
};

/// Executes loaded GSL scripts.
///
/// Typical host flow:
///   Interpreter interp(opts);
///   RegisterCoreBuiltins(&interp);            // builtins.h
///   BindWorld(&interp, &world, &effects);     // bindings.h
///   auto script = Parse(source);              // parser.h
///   interp.Load(std::move(*script));          // analyzes + runs top level
///   interp.Call("tick", {Value(dt)});
class Interpreter {
 public:
  explicit Interpreter(InterpreterOptions options = {});

  /// Registers a native builtin. Re-registering a name replaces it.
  void RegisterBuiltin(const std::string& name, NativeFn fn);
  bool IsBuiltin(const std::string& name) const {
    return builtins_.count(name) > 0;
  }

  /// Analyzes the script under the configured restriction, then executes its
  /// top-level statements (which typically just set globals). The script is
  /// owned by the interpreter afterwards; its functions and handlers become
  /// callable.
  Status Load(Script script);

  /// Like Load, but shares an already-parsed script. The AST is immutable
  /// during execution, so a ScriptHost parses a behavior once and loads the
  /// same Script into every per-shard interpreter (each still runs its own
  /// copy of the top-level statements to populate its globals).
  ///
  /// Loading is transactional: if the top-level statements error, the
  /// script's functions and handlers are unregistered again, so a corrected
  /// script can be re-loaded without "already defined" failures. (Globals a
  /// partially-run top level already set do persist.)
  Status LoadShared(std::shared_ptr<const Script> script);

  /// Like LoadShared but skips static analysis. Only for hosts loading one
  /// shared script into many interpreters whose restriction level and
  /// builtin set are identical to an interpreter that already analyzed it
  /// (analysis depends on nothing else); the ScriptHost analyzes on shard 0
  /// and reuses the verdict for shards 1..N-1.
  Status LoadSharedPreanalyzed(std::shared_ptr<const Script> script);

  /// Unregisters the most recently loaded script's functions and handlers
  /// (globals persist). No-op when nothing is loaded. Lets hosts roll back
  /// a multi-interpreter load that failed partway, and enables hot-reload.
  void UnloadLast();

  /// Calls a script function by name.
  Result<Value> Call(const std::string& fn, std::vector<Value> args);
  bool HasFunction(const std::string& fn) const;

  /// Dispatches an event to every loaded `on <event>(...)` handler, in load
  /// order. Each handler gets a fresh fuel budget. Stops at and returns the
  /// first error. When `completed` is non-null it receives the number of
  /// handler invocations that ran to completion (the erroring handler and
  /// any handlers after it are not counted).
  Status FireEvent(const std::string& event, const std::vector<Value>& args,
                   size_t* completed = nullptr);
  /// Number of handlers registered for an event.
  size_t HandlerCount(const std::string& event) const;

  // --- Globals (host <-> script data exchange) ---------------------------
  void SetGlobal(const std::string& name, Value v);
  Result<Value> GetGlobal(const std::string& name) const;

  // --- Fuel accounting ----------------------------------------------------
  /// Fuel burned by the most recent invocation.
  uint64_t last_fuel_used() const { return last_fuel_used_; }
  /// Total fuel burned over the interpreter's lifetime.
  uint64_t total_fuel_used() const { return total_fuel_used_; }

  /// Script-visible RNG (used by the random() builtin; deterministic).
  Rng& rng() { return rng_; }

  const InterpreterOptions& options() const { return options_; }

  /// Output lines captured from print() (tests and tools read these).
  const std::vector<std::string>& output() const { return output_; }
  void ClearOutput() { output_.clear(); }
  void AppendOutput(std::string line) { output_.push_back(std::move(line)); }

 private:
  friend class Frame;
  struct Flow {
    enum Kind : uint8_t { kNormal, kReturn, kBreak, kContinue } kind = kNormal;
    Value value;
  };

  Status Charge(uint64_t amount, int line);
  Result<Value> Eval(const Expr& e);
  Result<Flow> Exec(const Stmt& s);
  Result<Flow> ExecBlock(const std::vector<std::unique_ptr<Stmt>>& body);
  Result<Value> CallScriptFunction(const Stmt& fn, std::vector<Value> args,
                                   int line);

  // Scope stack: [0] is globals; function calls push an isolated frame
  // boundary so locals don't leak across calls.
  Value* FindVar(const std::string& name);
  void DeclareVar(const std::string& name, Value v);

  InterpreterOptions options_;
  std::vector<std::shared_ptr<const Script>> scripts_;
  std::unordered_map<std::string, const Stmt*> functions_;
  std::unordered_map<std::string, std::vector<const Stmt*>> handlers_;
  std::unordered_map<std::string, NativeFn> builtins_;

  struct Scope {
    std::unordered_map<std::string, Value> vars;
    bool frame_boundary = false;  // lookups stop here (except globals)
  };
  std::vector<Scope> scopes_;
  uint32_t call_depth_ = 0;
  uint64_t fuel_remaining_ = 0;
  uint64_t last_fuel_used_ = 0;
  uint64_t total_fuel_used_ = 0;
  Rng rng_;
  std::vector<std::string> output_;
};

}  // namespace gamedb::script
