#include "script/interpreter.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace gamedb::script {

Interpreter::Interpreter(InterpreterOptions options)
    : options_(options), rng_(options.rng_seed) {
  scopes_.push_back(Scope{});  // globals
}

void Interpreter::RegisterBuiltin(const std::string& name, NativeFn fn) {
  builtins_[name] = std::move(fn);
}

Status Interpreter::Load(Script script) {
  return LoadShared(std::make_shared<const Script>(std::move(script)));
}

Status Interpreter::LoadShared(std::shared_ptr<const Script> script) {
  GAMEDB_RETURN_NOT_OK(Analyze(
      *script, options_.restriction,
      [this](const std::string& n) { return IsBuiltin(n); }, nullptr));
  return LoadSharedPreanalyzed(std::move(script));
}

Status Interpreter::LoadSharedPreanalyzed(
    std::shared_ptr<const Script> script) {
  const Script& s = *script;
  for (const auto& [name, fn] : s.functions) {
    if (functions_.count(name)) {
      return Status::InvalidArgument("function '" + name +
                                     "' already defined by another script");
    }
  }
  scripts_.push_back(std::move(script));
  for (const auto& [name, fn] : s.functions) functions_[name] = fn;
  for (const Stmt* h : s.handlers) handlers_[h->name].push_back(h);

  // Run top-level statements with a fresh budget.
  fuel_remaining_ = options_.fuel_per_invocation;
  last_fuel_used_ = 0;
  Result<Flow> flow = ExecBlock(s.top_level);
  last_fuel_used_ = options_.fuel_per_invocation - fuel_remaining_;
  total_fuel_used_ += last_fuel_used_;
  if (!flow.ok()) {
    // Transactional load: leave no half-registered script behind.
    UnloadLast();
  }
  return flow.status();
}

void Interpreter::UnloadLast() {
  if (scripts_.empty()) return;
  const Script& s = *scripts_.back();
  for (const auto& [name, fn] : s.functions) functions_.erase(name);
  for (const Stmt* h : s.handlers) {
    auto it = handlers_.find(h->name);
    if (it == handlers_.end()) continue;
    auto& v = it->second;
    v.erase(std::remove(v.begin(), v.end(), h), v.end());
    if (v.empty()) handlers_.erase(it);
  }
  scripts_.pop_back();
}

bool Interpreter::HasFunction(const std::string& fn) const {
  return functions_.count(fn) > 0;
}

Result<Value> Interpreter::Call(const std::string& fn,
                                std::vector<Value> args) {
  auto it = functions_.find(fn);
  if (it == functions_.end()) {
    return Status::NotFound("no script function '" + fn + "'");
  }
  fuel_remaining_ = options_.fuel_per_invocation;
  last_fuel_used_ = 0;
  Result<Value> out = CallScriptFunction(*it->second, std::move(args), 0);
  last_fuel_used_ = options_.fuel_per_invocation - fuel_remaining_;
  total_fuel_used_ += last_fuel_used_;
  return out;
}

Status Interpreter::FireEvent(const std::string& event,
                              const std::vector<Value>& args,
                              size_t* completed) {
  if (completed != nullptr) *completed = 0;
  auto it = handlers_.find(event);
  if (it == handlers_.end()) return Status::OK();
  for (const Stmt* h : it->second) {
    fuel_remaining_ = options_.fuel_per_invocation;
    last_fuel_used_ = 0;
    Result<Value> r = CallScriptFunction(*h, args, h->line);
    last_fuel_used_ = options_.fuel_per_invocation - fuel_remaining_;
    total_fuel_used_ += last_fuel_used_;
    if (!r.ok()) return r.status();
    if (completed != nullptr) ++*completed;
  }
  return Status::OK();
}

size_t Interpreter::HandlerCount(const std::string& event) const {
  auto it = handlers_.find(event);
  return it == handlers_.end() ? 0 : it->second.size();
}

void Interpreter::SetGlobal(const std::string& name, Value v) {
  scopes_[0].vars[name] = std::move(v);
}

Result<Value> Interpreter::GetGlobal(const std::string& name) const {
  auto it = scopes_[0].vars.find(name);
  if (it == scopes_[0].vars.end()) {
    return Status::NotFound("no global '" + name + "'");
  }
  return it->second;
}

Status Interpreter::Charge(uint64_t amount, int line) {
  if (fuel_remaining_ < amount) {
    fuel_remaining_ = 0;
    return Status::ResourceExhausted(
        StringFormat("script fuel exhausted at line %d", line));
  }
  fuel_remaining_ -= amount;
  return Status::OK();
}

Value* Interpreter::FindVar(const std::string& name) {
  for (size_t i = scopes_.size(); i-- > 0;) {
    auto it = scopes_[i].vars.find(name);
    if (it != scopes_[i].vars.end()) return &it->second;
    if (scopes_[i].frame_boundary) break;  // locals end here
  }
  // Globals are always visible.
  auto it = scopes_[0].vars.find(name);
  if (it != scopes_[0].vars.end()) return &it->second;
  return nullptr;
}

void Interpreter::DeclareVar(const std::string& name, Value v) {
  scopes_.back().vars[name] = std::move(v);
}

Result<Value> Interpreter::CallScriptFunction(const Stmt& fn,
                                              std::vector<Value> args,
                                              int line) {
  if (call_depth_ >= options_.max_call_depth) {
    return Status::ResourceExhausted(
        StringFormat("line %d: call depth limit (%u) exceeded in '%s'", line,
                     options_.max_call_depth, fn.name.c_str()));
  }
  if (args.size() != fn.params.size()) {
    return Status::InvalidArgument(StringFormat(
        "line %d: '%s' expects %zu args, got %zu", line, fn.name.c_str(),
        fn.params.size(), args.size()));
  }
  ++call_depth_;
  scopes_.push_back(Scope{{}, /*frame_boundary=*/true});
  for (size_t i = 0; i < args.size(); ++i) {
    DeclareVar(fn.params[i], std::move(args[i]));
  }
  Result<Flow> flow = ExecBlock(fn.body);
  scopes_.pop_back();
  --call_depth_;
  if (!flow.ok()) return flow.status();
  if (flow->kind == Flow::kReturn) return flow->value;
  return Value::Nil();
}

Result<Interpreter::Flow> Interpreter::ExecBlock(
    const std::vector<std::unique_ptr<Stmt>>& body) {
  for (const auto& s : body) {
    GAMEDB_ASSIGN_OR_RETURN(Flow flow, Exec(*s));
    if (flow.kind != Flow::kNormal) return flow;
  }
  return Flow{};
}

Result<Interpreter::Flow> Interpreter::Exec(const Stmt& s) {
  GAMEDB_RETURN_NOT_OK(Charge(1, s.line));
  switch (s.kind) {
    case StmtKind::kLet: {
      GAMEDB_ASSIGN_OR_RETURN(Value v, Eval(*s.expr));
      DeclareVar(s.name, std::move(v));
      return Flow{};
    }
    case StmtKind::kAssign: {
      GAMEDB_ASSIGN_OR_RETURN(Value v, Eval(*s.expr));
      Value* slot = FindVar(s.name);
      if (slot == nullptr) {
        return Status::InvalidArgument(
            StringFormat("line %d: assignment to undeclared variable '%s' "
                         "(use 'let')",
                         s.line, s.name.c_str()));
      }
      *slot = std::move(v);
      return Flow{};
    }
    case StmtKind::kExpr: {
      GAMEDB_ASSIGN_OR_RETURN(Value v, Eval(*s.expr));
      (void)v;
      return Flow{};
    }
    case StmtKind::kIf: {
      GAMEDB_ASSIGN_OR_RETURN(Value cond, Eval(*s.expr));
      scopes_.push_back(Scope{});
      Result<Flow> flow =
          cond.Truthy() ? ExecBlock(s.body) : ExecBlock(s.else_body);
      scopes_.pop_back();
      return flow;
    }
    case StmtKind::kWhile: {
      while (true) {
        GAMEDB_RETURN_NOT_OK(Charge(1, s.line));
        GAMEDB_ASSIGN_OR_RETURN(Value cond, Eval(*s.expr));
        if (!cond.Truthy()) break;
        scopes_.push_back(Scope{});
        Result<Flow> flow = ExecBlock(s.body);
        scopes_.pop_back();
        if (!flow.ok()) return flow.status();
        if (flow->kind == Flow::kReturn) return *flow;
        if (flow->kind == Flow::kBreak) break;
      }
      return Flow{};
    }
    case StmtKind::kForeach: {
      GAMEDB_ASSIGN_OR_RETURN(Value iterable, Eval(*s.expr));
      if (!iterable.IsList()) {
        return Status::InvalidArgument(
            StringFormat("line %d: foreach expects a list, got %s", s.line,
                         iterable.TypeName()));
      }
      // Iterate over a snapshot so handlers can mutate the source list.
      std::vector<Value> items = *iterable.AsList();
      for (Value& item : items) {
        GAMEDB_RETURN_NOT_OK(Charge(1, s.line));
        scopes_.push_back(Scope{});
        DeclareVar(s.name, item);
        Result<Flow> flow = ExecBlock(s.body);
        scopes_.pop_back();
        if (!flow.ok()) return flow.status();
        if (flow->kind == Flow::kReturn) return *flow;
        if (flow->kind == Flow::kBreak) break;
      }
      return Flow{};
    }
    case StmtKind::kReturn: {
      Flow flow;
      flow.kind = Flow::kReturn;
      if (s.expr) {
        GAMEDB_ASSIGN_OR_RETURN(flow.value, Eval(*s.expr));
      }
      return flow;
    }
    case StmtKind::kBreak:
      return Flow{Flow::kBreak, Value::Nil()};
    case StmtKind::kContinue:
      return Flow{Flow::kContinue, Value::Nil()};
    case StmtKind::kFn:
    case StmtKind::kOn:
      return Status::InvalidArgument("declaration in statement position");
  }
  return Status::InvalidArgument("unknown statement kind");
}

Result<Value> Interpreter::Eval(const Expr& e) {
  GAMEDB_RETURN_NOT_OK(Charge(1, e.line));
  switch (e.kind) {
    case ExprKind::kLiteral:
      return e.literal;
    case ExprKind::kVar: {
      Value* v = FindVar(e.name);
      if (v == nullptr) {
        return Status::InvalidArgument(StringFormat(
            "line %d: undefined variable '%s'", e.line, e.name.c_str()));
      }
      return *v;
    }
    case ExprKind::kList: {
      std::vector<Value> items;
      items.reserve(e.args.size());
      for (const auto& a : e.args) {
        GAMEDB_ASSIGN_OR_RETURN(Value v, Eval(*a));
        items.push_back(std::move(v));
      }
      return Value::NewList(std::move(items));
    }
    case ExprKind::kUnary: {
      GAMEDB_ASSIGN_OR_RETURN(Value v, Eval(*e.args[0]));
      if (e.op == TokenType::kMinus) {
        GAMEDB_ASSIGN_OR_RETURN(double d, v.ToNumber());
        return Value(-d);
      }
      return Value(!v.Truthy());  // not
    }
    case ExprKind::kBinary: {
      // Short-circuit logical operators.
      if (e.op == TokenType::kAnd || e.op == TokenType::kOr) {
        GAMEDB_ASSIGN_OR_RETURN(Value lhs, Eval(*e.args[0]));
        bool lt = lhs.Truthy();
        if (e.op == TokenType::kAnd && !lt) return Value(false);
        if (e.op == TokenType::kOr && lt) return Value(true);
        GAMEDB_ASSIGN_OR_RETURN(Value rhs, Eval(*e.args[1]));
        return Value(rhs.Truthy());
      }
      GAMEDB_ASSIGN_OR_RETURN(Value lhs, Eval(*e.args[0]));
      GAMEDB_ASSIGN_OR_RETURN(Value rhs, Eval(*e.args[1]));
      switch (e.op) {
        case TokenType::kEq:
          return Value(lhs.Equals(rhs));
        case TokenType::kNe:
          return Value(!lhs.Equals(rhs));
        case TokenType::kPlus:
          if (lhs.IsString() || rhs.IsString()) {
            return Value(lhs.ToString() + rhs.ToString());
          }
          if (lhs.IsVec3() && rhs.IsVec3()) {
            return Value(lhs.AsVec3() + rhs.AsVec3());
          }
          break;
        case TokenType::kMinus:
          if (lhs.IsVec3() && rhs.IsVec3()) {
            return Value(lhs.AsVec3() - rhs.AsVec3());
          }
          break;
        case TokenType::kStar:
          if (lhs.IsVec3() && rhs.IsNumber()) {
            return Value(lhs.AsVec3() * static_cast<float>(rhs.AsNumber()));
          }
          break;
        default:
          break;
      }
      GAMEDB_ASSIGN_OR_RETURN(double a, lhs.ToNumber());
      GAMEDB_ASSIGN_OR_RETURN(double b, rhs.ToNumber());
      switch (e.op) {
        case TokenType::kPlus:
          return Value(a + b);
        case TokenType::kMinus:
          return Value(a - b);
        case TokenType::kStar:
          return Value(a * b);
        case TokenType::kSlash:
          if (b == 0.0) {
            return Status::InvalidArgument(
                StringFormat("line %d: division by zero", e.line));
          }
          return Value(a / b);
        case TokenType::kPercent:
          if (b == 0.0) {
            return Status::InvalidArgument(
                StringFormat("line %d: modulo by zero", e.line));
          }
          return Value(std::fmod(a, b));
        case TokenType::kLt:
          return Value(a < b);
        case TokenType::kLe:
          return Value(a <= b);
        case TokenType::kGt:
          return Value(a > b);
        case TokenType::kGe:
          return Value(a >= b);
        default:
          return Status::InvalidArgument("bad binary operator");
      }
    }
    case ExprKind::kCall: {
      std::vector<Value> args;
      args.reserve(e.args.size());
      for (const auto& a : e.args) {
        GAMEDB_ASSIGN_OR_RETURN(Value v, Eval(*a));
        args.push_back(std::move(v));
      }
      auto fn_it = functions_.find(e.name);
      if (fn_it != functions_.end()) {
        return CallScriptFunction(*fn_it->second, std::move(args), e.line);
      }
      auto b_it = builtins_.find(e.name);
      if (b_it != builtins_.end()) {
        Result<Value> r = b_it->second(args, *this);
        if (!r.ok()) {
          // Attach the call site, preserving the error code (fuel
          // exhaustion must stay ResourceExhausted, etc).
          return Status::FromCode(
              r.status().code(),
              StringFormat("line %d: %s: %s", e.line, e.name.c_str(),
                           r.status().message().c_str()));
        }
        return r;
      }
      return Status::InvalidArgument(StringFormat(
          "line %d: unknown function '%s'", e.line, e.name.c_str()));
    }
  }
  return Status::InvalidArgument("unknown expression kind");
}

}  // namespace gamedb::script
