#include "script/lint_report.h"

#include <cctype>
#include <cmath>

#include "common/string_util.h"

namespace gamedb::script {

namespace {

std::string WriteTargetName(uint8_t bits) {
  const bool self = (bits & kAccessWriteSelf) != 0;
  const bool foreign = (bits & kAccessWriteForeign) != 0;
  if (self && foreign) return "self+foreign";
  if (self) return "self";
  return "foreign";
}

}  // namespace

std::string RenderAccessReport(const std::string& origin,
                               const VerifyReport& report) {
  std::string out = origin + ": access summaries\n";
  for (size_t i = 0; i < report.entries.size(); ++i) {
    const EntryFacts& e = report.entries[i];
    out += StringFormat("  [%zu] %s: %s\n", i, e.name.c_str(),
                        AccessSummaryToString(e.facts.access).c_str());
    if (e.is_handler) {
      out += "      direct-write: n/a (trigger handler, runs in the apply "
             "phase)\n";
    } else {
      std::string reason;
      if (DirectWriteEligible(e, &reason)) {
        out += "      direct-write: yes\n";
      } else {
        out += "      direct-write: no — " + reason + "\n";
      }
    }
  }
  out += StringFormat("%s: conflict matrix (%zu entries, %zu edges)\n",
                      origin.c_str(), report.entries.size(),
                      report.conflicts.size());
  if (report.entries.size() < 2) {
    out += "  (fewer than two entries — nothing to conflict)\n";
    return out;
  }
  // Cell width follows the widest "[i]" tag so the grid stays aligned for
  // packs with 10+ entries.
  const size_t n = report.entries.size();
  size_t tag_w = StringFormat("[%zu]", n - 1).size();
  auto tag = [&](size_t i) {
    std::string t = StringFormat("[%zu]", i);
    return std::string(tag_w - t.size(), ' ') + t;
  };
  std::string header(2 + tag_w, ' ');
  for (size_t j = 0; j < n; ++j) header += " " + tag(j);
  out += header + "\n";
  std::vector<std::vector<bool>> grid(n, std::vector<bool>(n, false));
  for (const ConflictEdge& edge : report.conflicts) {
    grid[edge.a][edge.b] = true;
    grid[edge.b][edge.a] = true;
  }
  for (size_t i = 0; i < n; ++i) {
    std::string row = "  " + tag(i);
    for (size_t j = 0; j < n; ++j) {
      std::string cell = i == j ? "-" : grid[i][j] ? "X" : ".";
      row += " " + std::string(tag_w - 1, ' ') + cell;
    }
    out += row + "\n";
  }
  for (const ConflictEdge& edge : report.conflicts) {
    out += StringFormat("  [%zu]x[%zu] %s ~ %s: %s\n", edge.a, edge.b,
                        report.entries[edge.a].name.c_str(),
                        report.entries[edge.b].name.c_str(),
                        edge.reason.c_str());
  }
  return out;
}

namespace {

std::string DotEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::string RenderConflictDot(const std::string& origin,
                              const VerifyReport& report) {
  std::string out = "graph conflicts {\n";
  out += "  label=\"" + DotEscape(origin) + "\";\n";
  out += "  node [shape=box];\n";
  for (size_t i = 0; i < report.entries.size(); ++i) {
    const EntryFacts& e = report.entries[i];
    out += StringFormat("  n%zu [label=\"%s\\n%s\"];\n", i,
                        DotEscape(e.name).c_str(),
                        DotEscape(EffectSetName(e.facts.effects)).c_str());
  }
  for (const ConflictEdge& edge : report.conflicts) {
    out += StringFormat("  n%zu -- n%zu [label=\"%s\"];\n", edge.a, edge.b,
                        DotEscape(edge.reason).c_str());
  }
  out += "}\n";
  return out;
}

// ---------------------------------------------------------------------------
// JSON emission
// ---------------------------------------------------------------------------

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          out += StringFormat("\\u%04x", c);
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string JsonStr(const std::string& s) {
  return "\"" + JsonEscape(s) + "\"";
}

std::string JsonNum(double v) {
  if (v == static_cast<int64_t>(v) && std::fabs(v) < 1e15) {
    return StringFormat("%lld", static_cast<long long>(v));
  }
  return StringFormat("%.17g", v);
}

const char* JsonBool(bool b) { return b ? "true" : "false"; }

}  // namespace

std::string RenderLintJson(const std::vector<LintFileResult>& files,
                           bool werror) {
  std::string out = "{\n";
  out += "  \"schema\": \"gamedb.gsl_lint.v1\",\n";
  out += StringFormat("  \"werror\": %s,\n", JsonBool(werror));
  out += "  \"files\": [";
  for (size_t fi = 0; fi < files.size(); ++fi) {
    const LintFileResult& f = files[fi];
    out += fi == 0 ? "\n" : ",\n";
    out += "    {\n";
    out += "      \"file\": " + JsonStr(f.file) + ",\n";
    out += "      \"phase\": " +
           JsonStr(PhaseContextName(f.phase)) + ",\n";
    // Pack static cost estimate: the verifier's per-entry abstract costs
    // summed over the pack, plus the most expensive entry. `unbounded`
    // means at least one entry's cost analysis hit an unbounded loop, so
    // `total` is a lower bound.
    double total_cost = 0.0;
    bool cost_unbounded = false;
    for (const EntryFacts& e : f.report.entries) {
      total_cost += e.facts.cost;
      cost_unbounded = cost_unbounded || e.facts.cost_unbounded;
    }
    out += "      \"static_cost\": {\"total\": " + JsonNum(total_cost) +
           StringFormat(", \"unbounded\": %s", JsonBool(cost_unbounded)) +
           ", \"max_entry\": " +
           (f.report.max_entry_name.empty()
                ? std::string("null")
                : JsonStr(f.report.max_entry_name)) +
           ", \"max_entry_cost\": " + JsonNum(f.report.max_entry_cost) +
           "},\n";
    out += "      \"parse_error\": " +
           (f.parse_error.empty() ? std::string("null")
                                  : JsonStr(f.parse_error)) +
           ",\n";
    out += "      \"diagnostics\": [";
    for (size_t di = 0; di < f.diagnostics.size(); ++di) {
      const Diagnostic& d = f.diagnostics[di];
      out += di == 0 ? "\n" : ",\n";
      out += StringFormat(
          "        {\"severity\": %s, \"pass\": %s, \"line\": %d, "
          "\"col\": %d, \"message\": %s}",
          JsonStr(SeverityName(d.severity)).c_str(),
          JsonStr(DiagPassName(d.pass)).c_str(), d.loc.line, d.loc.col,
          JsonStr(d.message).c_str());
    }
    out += f.diagnostics.empty() ? "],\n" : "\n      ],\n";
    out += "      \"entries\": [";
    for (size_t ei = 0; ei < f.report.entries.size(); ++ei) {
      const EntryFacts& e = f.report.entries[ei];
      const AccessSummary& a = e.facts.access;
      out += ei == 0 ? "\n" : ",\n";
      out += "        {\n";
      out += "          \"name\": " + JsonStr(e.name) + ",\n";
      out += StringFormat("          \"handler\": %s,\n",
                          JsonBool(e.is_handler));
      out += "          \"effects\": " +
             JsonStr(EffectSetName(e.facts.effects)) + ",\n";
      out += "          \"cost\": " + JsonNum(e.facts.cost) + ",\n";
      out += StringFormat("          \"cost_unbounded\": %s,\n",
                          JsonBool(e.facts.cost_unbounded));
      out += "          \"reads\": [";
      bool first = true;
      for (const auto& [key, bits] : a.fields) {
        if ((bits & kAccessRead) == 0) continue;
        if (!first) out += ", ";
        first = false;
        out += JsonStr(key);
      }
      out += "],\n";
      out += "          \"writes\": [";
      first = true;
      for (const auto& [key, bits] : a.fields) {
        if ((bits & (kAccessWriteSelf | kAccessWriteForeign)) == 0) continue;
        if (!first) out += ", ";
        first = false;
        out += "{\"field\": " + JsonStr(key) + ", \"target\": " +
               JsonStr(WriteTargetName(bits)) + "}";
      }
      out += "],\n";
      out += StringFormat("          \"unknown_read\": %s,\n",
                          JsonBool(a.unknown_read));
      out += StringFormat("          \"unknown_write\": %s,\n",
                          JsonBool(a.unknown_write));
      out += StringFormat("          \"structural\": %s,\n",
                          JsonBool(a.structural_write));
      out += "          \"radius\": " + JsonNum(a.radius) + ",\n";
      out += StringFormat("          \"radius_unbounded\": %s,\n",
                          JsonBool(a.radius_unbounded));
      std::string reason;
      const bool eligible =
          !e.is_handler && DirectWriteEligible(e, &reason);
      if (e.is_handler) reason = "trigger handler";
      out += StringFormat("          \"direct_write_eligible\": %s,\n",
                          JsonBool(eligible));
      out += "          \"ineligible_reason\": " +
             (eligible ? std::string("null") : JsonStr(reason)) + "\n";
      out += "        }";
    }
    out += f.report.entries.empty() ? "],\n" : "\n      ],\n";
    out += "      \"conflicts\": [";
    for (size_t ci = 0; ci < f.report.conflicts.size(); ++ci) {
      const ConflictEdge& edge = f.report.conflicts[ci];
      out += ci == 0 ? "\n" : ",\n";
      out += StringFormat(
          "        {\"a\": %s, \"b\": %s, \"reason\": %s}",
          JsonStr(f.report.entries[edge.a].name).c_str(),
          JsonStr(f.report.entries[edge.b].name).c_str(),
          JsonStr(edge.reason).c_str());
    }
    out += f.report.conflicts.empty() ? "]\n" : "\n      ]\n";
    out += "    }";
  }
  out += files.empty() ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

// ---------------------------------------------------------------------------
// JSON validation: a minimal recursive-descent parser (no dependencies)
// plus a walker for the gamedb.gsl_lint.v1 shape.
// ---------------------------------------------------------------------------

namespace {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool b = false;
  double num = 0.0;
  std::string str;
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> members;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : members) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    GAMEDB_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
    SkipWs();
    if (pos_ != text_.size()) {
      return Fail("trailing content after top-level value");
    }
    return v;
  }

 private:
  Status Fail(const std::string& why) const {
    return Status::InvalidArgument(
        StringFormat("json parse error at offset %zu: %s", pos_,
                     why.c_str()));
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(const char* w) {
    size_t len = std::string(w).size();
    if (text_.compare(pos_, len, w) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue() {
    SkipWs();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    char c = text_[pos_];
    JsonValue v;
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        GAMEDB_ASSIGN_OR_RETURN(v.str, ParseString());
        v.kind = JsonValue::Kind::kString;
        return v;
      }
      case 't':
        if (!ConsumeWord("true")) return Fail("bad literal");
        v.kind = JsonValue::Kind::kBool;
        v.b = true;
        return v;
      case 'f':
        if (!ConsumeWord("false")) return Fail("bad literal");
        v.kind = JsonValue::Kind::kBool;
        v.b = false;
        return v;
      case 'n':
        if (!ConsumeWord("null")) return Fail("bad literal");
        v.kind = JsonValue::Kind::kNull;
        return v;
      default:
        return ParseNumber();
    }
  }

  Result<JsonValue> ParseObject() {
    if (!Consume('{')) return Fail("expected '{'");
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    SkipWs();
    if (Consume('}')) return v;
    while (true) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Fail("expected object key string");
      }
      GAMEDB_ASSIGN_OR_RETURN(std::string key, ParseString());
      if (!Consume(':')) return Fail("expected ':' after key");
      GAMEDB_ASSIGN_OR_RETURN(JsonValue member, ParseValue());
      v.members.emplace_back(std::move(key), std::move(member));
      if (Consume(',')) continue;
      if (Consume('}')) return v;
      return Fail("expected ',' or '}' in object");
    }
  }

  Result<JsonValue> ParseArray() {
    if (!Consume('[')) return Fail("expected '['");
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    SkipWs();
    if (Consume(']')) return v;
    while (true) {
      GAMEDB_ASSIGN_OR_RETURN(JsonValue item, ParseValue());
      v.items.push_back(std::move(item));
      if (Consume(',')) continue;
      if (Consume(']')) return v;
      return Fail("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Fail("expected '\"'");
    }
    ++pos_;
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return Fail("dangling escape");
        char esc = text_[pos_++];
        switch (esc) {
          case '"':
          case '\\':
          case '/':
            out += esc;
            break;
          case 'n':
            out += '\n';
            break;
          case 'r':
            out += '\r';
            break;
          case 't':
            out += '\t';
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Fail("bad \\u escape digit");
              }
            }
            // Only the escapes this emitter produces (< 0x20) need decode;
            // anything else passes through as '?' rather than full UTF-16.
            out += code < 0x80 ? static_cast<char>(code) : '?';
            break;
          }
          default:
            return Fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
    return Fail("unterminated string");
  }

  Result<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected a value");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    try {
      v.num = std::stod(text_.substr(start, pos_ - start));
    } catch (...) {
      return Fail("malformed number");
    }
    return v;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

Status Expect(bool cond, const std::string& what) {
  if (cond) return Status::OK();
  return Status::InvalidArgument("gsl_lint json schema violation: " + what);
}

bool IsKind(const JsonValue* v, JsonValue::Kind k) {
  return v != nullptr && v->kind == k;
}

bool OneOf(const std::string& s, std::initializer_list<const char*> opts) {
  for (const char* o : opts) {
    if (s == o) return true;
  }
  return false;
}

Status ValidateDiagnostic(const JsonValue& d) {
  GAMEDB_RETURN_NOT_OK(Expect(d.kind == JsonValue::Kind::kObject,
                              "diagnostic must be an object"));
  const JsonValue* sev = d.Find("severity");
  GAMEDB_RETURN_NOT_OK(Expect(
      IsKind(sev, JsonValue::Kind::kString) &&
          OneOf(sev->str, {"warning", "error"}),
      "diagnostic.severity must be \"warning\" or \"error\""));
  const JsonValue* pass = d.Find("pass");
  GAMEDB_RETURN_NOT_OK(Expect(
      IsKind(pass, JsonValue::Kind::kString) &&
          OneOf(pass->str, {"structure", "phase", "bindings", "cost"}),
      "diagnostic.pass must be a verifier pass token"));
  GAMEDB_RETURN_NOT_OK(Expect(
      IsKind(d.Find("line"), JsonValue::Kind::kNumber) &&
          IsKind(d.Find("col"), JsonValue::Kind::kNumber),
      "diagnostic.line/col must be numbers"));
  return Expect(IsKind(d.Find("message"), JsonValue::Kind::kString),
                "diagnostic.message must be a string");
}

Status ValidateEntry(const JsonValue& e) {
  GAMEDB_RETURN_NOT_OK(
      Expect(e.kind == JsonValue::Kind::kObject, "entry must be an object"));
  GAMEDB_RETURN_NOT_OK(Expect(
      IsKind(e.Find("name"), JsonValue::Kind::kString),
      "entry.name must be a string"));
  GAMEDB_RETURN_NOT_OK(Expect(
      IsKind(e.Find("handler"), JsonValue::Kind::kBool),
      "entry.handler must be a bool"));
  GAMEDB_RETURN_NOT_OK(Expect(
      IsKind(e.Find("effects"), JsonValue::Kind::kString),
      "entry.effects must be a string"));
  GAMEDB_RETURN_NOT_OK(Expect(
      IsKind(e.Find("cost"), JsonValue::Kind::kNumber),
      "entry.cost must be a number"));
  for (const char* key :
       {"cost_unbounded", "unknown_read", "unknown_write", "structural",
        "radius_unbounded", "direct_write_eligible"}) {
    GAMEDB_RETURN_NOT_OK(Expect(IsKind(e.Find(key), JsonValue::Kind::kBool),
                                std::string("entry.") + key +
                                    " must be a bool"));
  }
  GAMEDB_RETURN_NOT_OK(Expect(
      IsKind(e.Find("radius"), JsonValue::Kind::kNumber),
      "entry.radius must be a number"));
  const JsonValue* reads = e.Find("reads");
  GAMEDB_RETURN_NOT_OK(Expect(IsKind(reads, JsonValue::Kind::kArray),
                              "entry.reads must be an array"));
  for (const JsonValue& r : reads->items) {
    GAMEDB_RETURN_NOT_OK(Expect(r.kind == JsonValue::Kind::kString,
                                "entry.reads items must be strings"));
  }
  const JsonValue* writes = e.Find("writes");
  GAMEDB_RETURN_NOT_OK(Expect(IsKind(writes, JsonValue::Kind::kArray),
                              "entry.writes must be an array"));
  for (const JsonValue& w : writes->items) {
    GAMEDB_RETURN_NOT_OK(Expect(
        w.kind == JsonValue::Kind::kObject &&
            IsKind(w.Find("field"), JsonValue::Kind::kString),
        "entry.writes items must be {field, target} objects"));
    const JsonValue* target = w.Find("target");
    GAMEDB_RETURN_NOT_OK(Expect(
        IsKind(target, JsonValue::Kind::kString) &&
            OneOf(target->str, {"self", "foreign", "self+foreign"}),
        "entry.writes[].target must be self/foreign/self+foreign"));
  }
  const JsonValue* reason = e.Find("ineligible_reason");
  return Expect(reason != nullptr &&
                    (reason->kind == JsonValue::Kind::kNull ||
                     reason->kind == JsonValue::Kind::kString),
                "entry.ineligible_reason must be a string or null");
}

Status ValidateFile(const JsonValue& f) {
  GAMEDB_RETURN_NOT_OK(
      Expect(f.kind == JsonValue::Kind::kObject, "file must be an object"));
  GAMEDB_RETURN_NOT_OK(Expect(
      IsKind(f.Find("file"), JsonValue::Kind::kString),
      "file.file must be a string"));
  const JsonValue* phase = f.Find("phase");
  GAMEDB_RETURN_NOT_OK(Expect(
      IsKind(phase, JsonValue::Kind::kString) &&
          OneOf(phase->str,
                {"sequential", "parallel-defer", "parallel-reject"}),
      "file.phase must be a phase context token"));
  const JsonValue* cost = f.Find("static_cost");
  GAMEDB_RETURN_NOT_OK(Expect(IsKind(cost, JsonValue::Kind::kObject),
                              "file.static_cost must be an object"));
  GAMEDB_RETURN_NOT_OK(Expect(
      IsKind(cost->Find("total"), JsonValue::Kind::kNumber) &&
          IsKind(cost->Find("max_entry_cost"), JsonValue::Kind::kNumber),
      "file.static_cost total/max_entry_cost must be numbers"));
  GAMEDB_RETURN_NOT_OK(Expect(
      IsKind(cost->Find("unbounded"), JsonValue::Kind::kBool),
      "file.static_cost.unbounded must be a bool"));
  const JsonValue* max_entry = cost->Find("max_entry");
  GAMEDB_RETURN_NOT_OK(
      Expect(max_entry != nullptr &&
                 (max_entry->kind == JsonValue::Kind::kNull ||
                  max_entry->kind == JsonValue::Kind::kString),
             "file.static_cost.max_entry must be a string or null"));
  const JsonValue* parse_error = f.Find("parse_error");
  GAMEDB_RETURN_NOT_OK(
      Expect(parse_error != nullptr &&
                 (parse_error->kind == JsonValue::Kind::kNull ||
                  parse_error->kind == JsonValue::Kind::kString),
             "file.parse_error must be a string or null"));
  const JsonValue* diags = f.Find("diagnostics");
  GAMEDB_RETURN_NOT_OK(Expect(IsKind(diags, JsonValue::Kind::kArray),
                              "file.diagnostics must be an array"));
  for (const JsonValue& d : diags->items) {
    GAMEDB_RETURN_NOT_OK(ValidateDiagnostic(d));
  }
  const JsonValue* entries = f.Find("entries");
  GAMEDB_RETURN_NOT_OK(Expect(IsKind(entries, JsonValue::Kind::kArray),
                              "file.entries must be an array"));
  for (const JsonValue& e : entries->items) {
    GAMEDB_RETURN_NOT_OK(ValidateEntry(e));
  }
  const JsonValue* conflicts = f.Find("conflicts");
  GAMEDB_RETURN_NOT_OK(Expect(IsKind(conflicts, JsonValue::Kind::kArray),
                              "file.conflicts must be an array"));
  for (const JsonValue& c : conflicts->items) {
    GAMEDB_RETURN_NOT_OK(Expect(
        c.kind == JsonValue::Kind::kObject &&
            IsKind(c.Find("a"), JsonValue::Kind::kString) &&
            IsKind(c.Find("b"), JsonValue::Kind::kString) &&
            IsKind(c.Find("reason"), JsonValue::Kind::kString),
        "file.conflicts items must be {a, b, reason} string objects"));
  }
  return Status::OK();
}

}  // namespace

Status ValidateLintJson(const std::string& json) {
  JsonParser parser(json);
  GAMEDB_ASSIGN_OR_RETURN(JsonValue root, parser.Parse());
  GAMEDB_RETURN_NOT_OK(Expect(root.kind == JsonValue::Kind::kObject,
                              "top level must be an object"));
  const JsonValue* schema = root.Find("schema");
  GAMEDB_RETURN_NOT_OK(Expect(
      IsKind(schema, JsonValue::Kind::kString) &&
          schema->str == "gamedb.gsl_lint.v1",
      "schema must be \"gamedb.gsl_lint.v1\""));
  GAMEDB_RETURN_NOT_OK(Expect(
      IsKind(root.Find("werror"), JsonValue::Kind::kBool),
      "werror must be a bool"));
  const JsonValue* files = root.Find("files");
  GAMEDB_RETURN_NOT_OK(Expect(IsKind(files, JsonValue::Kind::kArray),
                              "files must be an array"));
  for (const JsonValue& f : files->items) {
    GAMEDB_RETURN_NOT_OK(ValidateFile(f));
  }
  return Status::OK();
}

}  // namespace gamedb::script
