#include "script/host.h"

#include <limits>

#include "common/logging.h"
#include "common/percentile.h"
#include "common/string_util.h"
#include "core/query.h"
#include "script/builtins.h"
#include "script/parser.h"
#include "views/maintainer.h"

namespace gamedb::script {

namespace {

/// Seed for one entity's random() stream this tick. SplitMix64-style mixing
/// of (base, tick, entity) — Rng::Seed expands it further, we only need the
/// three inputs to land in distinct, well-separated states.
/// Stable metric-name bucket for a kDirectChecked fallback reason (the
/// reason strings carry entry/table names; registry counters must not).
const char* FallbackCategory(const std::string& reason) {
  if (reason.rfind("no access summary", 0) == 0) return "no_access_summary";
  if (reason.find("change observers") != std::string::npos) {
    return "observers";
  }
  return "ineligible";
}

uint64_t PerEntitySeed(uint64_t base, uint64_t tick, EntityId e) {
  uint64_t x = base;
  x ^= tick * 0x9E3779B97F4A7C15ull;
  x ^= e.Raw() * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 30)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

}  // namespace

ScriptHost::ScriptHost(World* world, ScriptHostOptions options)
    : world_(world),
      options_(options),
      exec_(options.num_threads),
      effects_(exec_.shard_count()),
      deferred_(exec_.shard_count()) {
  // kDirect would let pool threads write the World mid-query — the exact
  // race the host exists to prevent. (kDirectChecked is different: writes
  // go in place only when the verifier proved them race-free.)
  GAMEDB_CHECK(options_.mutations != MutationPolicy::kDirect);
  gate_.current.resize(exec_.shard_count());
  gate_.direct_writes.assign(exec_.shard_count(), 0);
  gate_.redirected.assign(exec_.shard_count(), 0);
  shards_.reserve(exec_.shard_count());
  for (size_t i = 0; i < exec_.shard_count(); ++i) {
    auto interp = std::make_unique<Interpreter>(options_.interpreter);
    RegisterCoreBuiltins(interp.get());
    WorldBindOptions bind;
    bind.shard = i;
    bind.mutations = options_.mutations;
    bind.deferred = &deferred_;
    bind.planner = options_.planner;
    bind.direct_gate = &gate_;
    BindWorld(interp.get(), world_, &effects_, bind);
    if (options_.views != nullptr) BindViews(interp.get(), options_.views);
    shards_.push_back(std::move(interp));
  }
  if (options_.telemetry.metrics != nullptr) {
    telemetry::MetricsRegistry* reg = options_.telemetry.metrics;
    instruments_.ticks = reg->GetCounter("script.ticks");
    instruments_.entities = reg->GetCounter("script.entities");
    instruments_.script_errors = reg->GetCounter("script.errors");
    instruments_.effect_contributions =
        reg->GetCounter("script.effect_contributions");
    instruments_.dropped_contributions =
        reg->GetCounter("script.dropped_contributions");
    instruments_.deferred_ops = reg->GetCounter("script.deferred_ops");
    instruments_.deferred_skipped =
        reg->GetCounter("script.deferred_skipped");
    instruments_.direct_ticks = reg->GetCounter("script.direct_ticks");
    instruments_.fallback_ticks = reg->GetCounter("script.fallback_ticks");
    instruments_.direct_writes = reg->GetCounter("script.direct_writes");
    instruments_.direct_redirected =
        reg->GetCounter("script.direct_redirected");
    instruments_.quiescent_ns =
        reg->GetHistogram("script.phase.quiescent_ns");
    instruments_.maintain_ns = reg->GetHistogram("script.phase.maintain_ns");
    instruments_.query_phase_ns =
        reg->GetHistogram("script.phase.query_ns");
    instruments_.apply_phase_ns =
        reg->GetHistogram("script.phase.apply_ns");
  }
}

Status ScriptHost::Load(std::string_view source, std::string_view origin) {
  GAMEDB_ASSIGN_OR_RETURN(Script parsed, Parse(source, std::string(origin)));
  diagnostics_.clear();
  verify_report_ = VerifyReport{};
  const bool verified = options_.strictness != Strictness::kOff;
  if (verified) {
    VerifierOptions vopts;
    vopts.restriction = options_.interpreter.restriction;
    vopts.phase = options_.mutations == MutationPolicy::kReject
                      ? PhaseContext::kParallelReject
                      : PhaseContext::kParallelDefer;
    Interpreter* shard0 = shards_[0].get();
    vopts.is_builtin = [shard0](const std::string& name) {
      return shard0->IsBuiltin(name);
    };
    vopts.schema = ReflectionSchema();
    if (options_.views != nullptr) {
      views::ViewCatalog* catalog = options_.views;
      vopts.schema.has_view = [catalog](const std::string& name) {
        return catalog->Find(name) != nullptr;
      };
      vopts.schema.view_names = [catalog]() { return catalog->ViewNames(); };
    }
    vopts.schema.has_channel = [this](const std::string& name) {
      if (effects_.HasChannel(name)) return true;
      for (const auto& [channel, apply] : channels_) {
        if (channel == name) return true;
      }
      return false;
    };
    vopts.schema.channel_names = [this]() {
      std::vector<std::string> names = effects_.ChannelNames();
      for (const auto& [channel, apply] : channels_) {
        bool known = false;
        for (const std::string& n : names) known = known || n == channel;
        if (!known) names.push_back(channel);
      }
      return names;
    };
    // An event is handled if a previously loaded pack registered a handler
    // for it, or this script declares one itself.
    const Script* raw = &parsed;
    vopts.schema.has_event = [shard0, raw](const std::string& event) {
      if (shard0->HandlerCount(event) > 0) return true;
      for (const Stmt* h : raw->handlers) {
        if (h->name == event) return true;
      }
      return false;
    };
    vopts.cost_budget = options_.script_cost_budget;
    vopts.top_level_must_be_pure = true;
    verify_report_ = Verify(parsed, vopts, &diagnostics_);
    if (diagnostics_.has_errors()) {
      if (options_.strictness == Strictness::kStrict) {
        return Status::InvalidArgument("script verification failed:\n" +
                                       diagnostics_.ToString());
      }
      // kWarn: structural errors still reject (they always have — the
      // script would be unloadable or trivially broken); phase, bindings
      // and cost findings are advisory.
      for (const Diagnostic& d : diagnostics_.diagnostics()) {
        if (d.severity == Severity::kError &&
            d.pass == DiagPass::kStructure) {
          return Status::ParseError(
              d.loc.valid() ? StringFormat("line %d: %s", d.loc.line,
                                           d.message.c_str())
                            : d.message);
        }
      }
    }
    if (!diagnostics_.empty()) {
      for (const Diagnostic& d : diagnostics_.diagnostics()) {
        GAMEDB_LOG(kWarn) << "script verifier: " << d.ToString();
      }
    }
  }
  auto script = std::make_shared<const Script>(std::move(parsed));
  // Unload shards [0, n) — a load that failed partway must leave every
  // interpreter exactly as it was, or the next Load of a corrected script
  // would hit "function already defined" on the shards that succeeded.
  auto roll_back = [this](size_t n) {
    for (size_t i = 0; i < n; ++i) shards_[i]->UnloadLast();
  };
  for (size_t i = 0; i < shards_.size(); ++i) {
    // When the verifier ran, its structure pass subsumes shard 0's static
    // analysis; otherwise shard 0 analyzes and shards 1+ (configured
    // identically: same restriction, same builtins) reuse the verdict.
    Status st = i == 0 && !verified ? shards_[i]->LoadShared(script)
                                    : shards_[i]->LoadSharedPreanalyzed(script);
    if (!st.ok()) {
      roll_back(i);  // shard i rolled itself back (LoadShared is
                     // transactional); undo the shards before it
      deferred_.Clear();
      effects_.Clear();
      return st;
    }
  }
  // Top-level statements ran once per shard; had they mutated the world or
  // emitted effects, the side effects would now be duplicated shard_count
  // times. Reject instead of applying garbage.
  if (deferred_.size() > 0 || effects_.contribution_count() > 0) {
    roll_back(shards_.size());
    deferred_.Clear();
    effects_.Clear();
    return Status::InvalidArgument(
        "script top level must not mutate the world or emit effects (it runs "
        "once per shard); do it from the host or inside the tick function");
  }
  // Record per-entry direct-write verdicts for kDirectChecked. The verdict
  // combines the entry's own summary (DirectWriteEligible) with the pack
  // conflict graph: an entry that conflicts with ANY co-loaded entry stays
  // on the deferred path, because trigger handlers and other entries may
  // observe its tables mid-phase.
  if (verified) {
    for (size_t i = 0; i < verify_report_.entries.size(); ++i) {
      const EntryFacts& entry = verify_report_.entries[i];
      if (entry.is_handler) continue;  // handlers never drive RunTick
      DirectEntry verdict;
      verdict.eligible = DirectWriteEligible(entry, &verdict.reason);
      if (verdict.eligible) {
        for (const ConflictEdge& edge : verify_report_.conflicts) {
          if (edge.a != i && edge.b != i) continue;
          const EntryFacts& other =
              verify_report_.entries[edge.a == i ? edge.b : edge.a];
          verdict.eligible = false;
          verdict.reason =
              "conflicts with '" + other.name + "' (" + edge.reason + ")";
          break;
        }
      }
      if (verdict.eligible) {
        for (const auto& [key, bits] : entry.facts.access.fields) {
          if ((bits & (kAccessWriteSelf | kAccessWriteForeign)) == 0) {
            continue;
          }
          std::string comp = key.substr(0, key.find('.'));
          bool seen = false;
          for (const std::string& c : verdict.written_components) {
            seen = seen || c == comp;
          }
          if (!seen) verdict.written_components.push_back(std::move(comp));
        }
      }
      direct_eligible_[entry.name] = std::move(verdict);
    }
  }
  return Status::OK();
}

std::pair<bool, std::string> ScriptHost::DirectVerdict(
    const std::string& fn) const {
  auto it = direct_eligible_.find(fn);
  if (it == direct_eligible_.end()) {
    return {false,
            "no access summary for '" + fn + "' (verifier off or unloaded)"};
  }
  return {it->second.eligible, it->second.reason};
}

void ScriptHost::OnChannel(std::string name,
                           std::function<void(EntityId, double)> apply) {
  channels_.emplace_back(std::move(name), std::move(apply));
}

void ScriptHost::SetGlobal(const std::string& name, const Value& v) {
  for (auto& shard : shards_) shard->SetGlobal(name, v);
}

std::vector<std::string> ScriptHost::DrainOutput() {
  std::vector<std::string> out;
  for (auto& shard : shards_) {
    for (const std::string& line : shard->output()) out.push_back(line);
    shard->ClearOutput();
  }
  return out;
}

void ScriptHost::PrewarmStores() {
  TypeRegistry& reg = TypeRegistry::Global();
  for (uint32_t id = 0; id < reg.size(); ++id) {
    world_->StoreById(id);
  }
}

Result<ScriptTickStats> ScriptHost::RunTick(
    const std::string& fn, const std::vector<EntityId>& entities) {
  if (!shards_[0]->HasFunction(fn)) {
    return Status::NotFound("no script function '" + fn +
                            "' loaded in this host");
  }
  PrewarmStores();
  ScriptTickStats stats;
  // Arm the direct-write gate only when the load-time analysis proved this
  // entry disjoint AND the tables it writes have no change observers right
  // now (Touch replay notifies without old values, which value-maintained
  // aggregates cannot absorb). Anything unprovable falls back to kDefer.
  bool direct = false;
  if (options_.mutations == MutationPolicy::kDirectChecked) {
    auto it = direct_eligible_.find(fn);
    if (it == direct_eligible_.end()) {
      stats.fallback_reason =
          "no access summary for '" + fn + "' (verifier off or unloaded)";
    } else if (!it->second.eligible) {
      stats.fallback_reason = it->second.reason;
    } else {
      direct = true;
      for (const std::string& comp : it->second.written_components) {
        const TypeInfo* info = TypeRegistry::Global().FindByName(comp);
        ComponentStore* store =
            info == nullptr ? nullptr : world_->StoreByIdIfExists(info->id());
        if (store != nullptr && store->observer_count() > 0) {
          direct = false;
          stats.fallback_reason =
              "table '" + comp +
              "' has change observers (Touch replay cannot carry old values)";
          break;
        }
      }
    }
    if (direct) {
      ++direct_ticks_;
    } else {
      ++fallback_ticks_;
      // Per-reason composition: this tick's map plus the host-level
      // accumulation (the fix for fallback_reason only keeping the last
      // reason across a run), and the categorized registry counter.
      ++stats.fallback_reasons[stats.fallback_reason];
      ++fallback_reason_counts_[stats.fallback_reason];
      if (options_.telemetry.metrics != nullptr) {
        options_.telemetry.metrics
            ->GetCounter(std::string("script.fallback.") +
                         FallbackCategory(stats.fallback_reason))
            ->Increment();
      }
    }
  }
  stats.direct_checked = direct;
  gate_.enabled = direct;
  // Sequential point: let the planner refresh its statistics (and thereby
  // invalidate cached plans) before shards start planning concurrently,
  // then maintain live views from the change capture of the previous
  // apply phase — subscriptions fire here, and shards read a consistent
  // view snapshot for the whole parallel phase.
  telemetry::Tracer* tracer = options_.telemetry.tracer;
  const bool tracing = tracer != nullptr && tracer->enabled();
  if (options_.planner != nullptr) {
    uint64_t t0 = MonotonicNanos();
    options_.planner->OnQuiescent();
    stats.quiescent_ns = MonotonicNanos() - t0;
    if (tracing) {
      tracer->RecordSpan("planner.quiescent", t0, stats.quiescent_ns, 0);
    }
  }
  if (options_.views != nullptr) {
    uint64_t t0 = MonotonicNanos();
    options_.views->Maintain();
    stats.maintain_ns = MonotonicNanos() - t0;
    if (tracing) {
      tracer->RecordSpan("views.maintain", t0, stats.maintain_ns, 0);
    }
  }
  // Pre-create the wired channels so steady-state emits take only the
  // shared-lock path in ScriptEffects::Channel.
  for (const auto& [name, apply] : channels_) {
    effects_.Channel(name);
  }

  stats.entities = entities.size();

  const size_t nshards = shards_.size();
  std::vector<uint64_t> fuel_before(nshards);
  for (size_t i = 0; i < nshards; ++i) {
    fuel_before[i] = shards_[i]->total_fuel_used();
  }
  // Per-shard error records, reduced after the join so the reported error
  // is the earliest in entity order regardless of execution interleaving.
  constexpr size_t kNone = std::numeric_limits<size_t>::max();
  std::vector<Status> first_status(nshards, Status::OK());
  std::vector<size_t> first_index(nshards, kNone);
  std::vector<size_t> error_count(nshards, 0);

  const uint64_t tick = world_->tick();
  const uint64_t base_seed = options_.interpreter.rng_seed;

  // --- Query phase (parallel): read-only against tick-start state. -------
  const uint64_t query_t0 = MonotonicNanos();
  exec_.pool().ParallelForChunks(
      entities.size(), [&](size_t chunk, size_t begin, size_t end) {
        // Shard spans on tid = shard + 1: the fan-out reads as parallel
        // tracks under the tid-0 sequential timeline in chrome://tracing.
        const uint64_t shard_t0 = tracing ? MonotonicNanos() : 0;
        Interpreter& interp = *shards_[chunk];
        for (size_t i = begin; i < end; ++i) {
          EntityId e = entities[i];
          if (!world_->Alive(e)) continue;
          // Under an armed gate, tell the shard's bindings which entity is
          // being ticked — set() writes in place only on that entity.
          if (direct) gate_.current[chunk] = e;
          // Per-entity random() stream: independent of the partition.
          interp.rng().Seed(PerEntitySeed(base_seed, tick, e));
          Result<Value> r = interp.Call(fn, {Value(e)});
          if (!r.ok()) {
            ++error_count[chunk];
            if (first_index[chunk] == kNone) {
              first_index[chunk] = i;
              first_status[chunk] = r.status();
            }
          }
        }
        if (tracing) {
          tracer->RecordSpan("script.shard", shard_t0,
                             MonotonicNanos() - shard_t0,
                             static_cast<uint32_t>(chunk) + 1);
        }
      });

  stats.query_phase_ns = MonotonicNanos() - query_t0;
  if (tracing) {
    tracer->RecordSpan("script.query_phase", query_t0, stats.query_phase_ns,
                       0);
  }
  gate_.enabled = false;
  for (size_t i = 0; i < nshards; ++i) {
    stats.direct_writes += gate_.direct_writes[i];
    stats.direct_redirected += gate_.redirected[i];
    gate_.direct_writes[i] = 0;
    gate_.redirected[i] = 0;
  }

  size_t earliest = kNone;
  for (size_t i = 0; i < nshards; ++i) {
    stats.script_errors += error_count[i];
    stats.fuel_used += shards_[i]->total_fuel_used() - fuel_before[i];
    if (first_index[i] < earliest) {
      earliest = first_index[i];
      stats.first_error = first_status[i];
    }
  }
  stats.effect_contributions = effects_.contribution_count();
  stats.deferred_ops = deferred_.size();

  // --- Apply phase (sequential, deterministic). --------------------------
  const uint64_t apply_t0 = MonotonicNanos();
  // 1. Effect channels, in registration order.
  for (const auto& [name, apply] : channels_) {
    effects_.Drain(name, apply);
  }
  stats.dropped_contributions = effects_.contribution_count();
  effects_.Clear();
  // 2. Deferred structural ops, in shard order (== entity order).
  deferred_.Apply(world_, &stats.deferred_skipped);
  stats.apply_phase_ns = MonotonicNanos() - apply_t0;
  if (tracing) {
    tracer->RecordSpan("script.apply_phase", apply_t0, stats.apply_phase_ns,
                       0);
  }

  if (instruments_.ticks != nullptr) {
    instruments_.ticks->Increment();
    instruments_.entities->Add(stats.entities);
    instruments_.script_errors->Add(stats.script_errors);
    instruments_.effect_contributions->Add(stats.effect_contributions);
    instruments_.dropped_contributions->Add(stats.dropped_contributions);
    instruments_.deferred_ops->Add(stats.deferred_ops);
    instruments_.deferred_skipped->Add(stats.deferred_skipped);
    if (options_.mutations == MutationPolicy::kDirectChecked) {
      instruments_.direct_ticks->Add(stats.direct_checked ? 1 : 0);
      instruments_.fallback_ticks->Add(stats.direct_checked ? 0 : 1);
    }
    instruments_.direct_writes->Add(stats.direct_writes);
    instruments_.direct_redirected->Add(stats.direct_redirected);
    instruments_.quiescent_ns->Record(stats.quiescent_ns);
    instruments_.maintain_ns->Record(stats.maintain_ns);
    instruments_.query_phase_ns->Record(stats.query_phase_ns);
    instruments_.apply_phase_ns->Record(stats.apply_phase_ns);
  }

  return stats;
}

Result<ScriptTickStats> ScriptHost::RunTickOver(const std::string& fn,
                                                const std::string& component) {
  DynamicQuery q(world_);
  q.SetPlanner(options_.planner).With(component);
  GAMEDB_ASSIGN_OR_RETURN(std::vector<EntityId> entities, q.Collect());
  return RunTick(fn, entities);
}

}  // namespace gamedb::script
