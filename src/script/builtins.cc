#include "script/builtins.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace gamedb::script {

Status ExpectArgs(const std::vector<Value>& args, size_t n,
                  const char* signature) {
  if (args.size() != n) {
    return Status::InvalidArgument(
        StringFormat("expected %zu args: %s", n, signature));
  }
  return Status::OK();
}

Result<double> ArgNumber(const std::vector<Value>& args, size_t i,
                         const char* signature) {
  if (i >= args.size() || !args[i].IsNumber()) {
    return Status::InvalidArgument(
        StringFormat("arg %zu must be a number: %s", i + 1, signature));
  }
  return args[i].AsNumber();
}

Result<EntityId> ArgEntity(const std::vector<Value>& args, size_t i,
                           const char* signature) {
  if (i >= args.size() || !args[i].IsEntity()) {
    return Status::InvalidArgument(
        StringFormat("arg %zu must be an entity: %s", i + 1, signature));
  }
  return args[i].AsEntity();
}

Result<std::string> ArgString(const std::vector<Value>& args, size_t i,
                              const char* signature) {
  if (i >= args.size() || !args[i].IsString()) {
    return Status::InvalidArgument(
        StringFormat("arg %zu must be a string: %s", i + 1, signature));
  }
  return args[i].AsString();
}

Result<Vec3> ArgVec3(const std::vector<Value>& args, size_t i,
                     const char* signature) {
  if (i >= args.size() || !args[i].IsVec3()) {
    return Status::InvalidArgument(
        StringFormat("arg %zu must be a vec3: %s", i + 1, signature));
  }
  return args[i].AsVec3();
}

Result<ValueList> ArgList(const std::vector<Value>& args, size_t i,
                          const char* signature) {
  if (i >= args.size() || !args[i].IsList()) {
    return Status::InvalidArgument(
        StringFormat("arg %zu must be a list: %s", i + 1, signature));
  }
  return args[i].AsList();
}

void RegisterCoreBuiltins(Interpreter* interp) {
  interp->RegisterBuiltin(
      "print", [](std::vector<Value>& args, Interpreter& in) -> Result<Value> {
        std::string line;
        for (size_t i = 0; i < args.size(); ++i) {
          if (i > 0) line += " ";
          line += args[i].ToString();
        }
        in.AppendOutput(std::move(line));
        return Value::Nil();
      });

  interp->RegisterBuiltin(
      "str", [](std::vector<Value>& args, Interpreter&) -> Result<Value> {
        GAMEDB_RETURN_NOT_OK(ExpectArgs(args, 1, "str(v)"));
        return Value(args[0].ToString());
      });

  auto unary_math = [interp](const char* name, double (*fn)(double)) {
    std::string sig = std::string(name) + "(x)";
    interp->RegisterBuiltin(
        name, [fn, sig](std::vector<Value>& args,
                        Interpreter&) -> Result<Value> {
          GAMEDB_RETURN_NOT_OK(ExpectArgs(args, 1, sig.c_str()));
          GAMEDB_ASSIGN_OR_RETURN(double x, ArgNumber(args, 0, sig.c_str()));
          return Value(fn(x));
        });
  };
  unary_math("abs", [](double x) { return std::abs(x); });
  unary_math("floor", [](double x) { return std::floor(x); });
  unary_math("ceil", [](double x) { return std::ceil(x); });
  unary_math("sqrt", [](double x) { return std::sqrt(x); });

  interp->RegisterBuiltin(
      "min", [](std::vector<Value>& args, Interpreter&) -> Result<Value> {
        GAMEDB_RETURN_NOT_OK(ExpectArgs(args, 2, "min(a, b)"));
        GAMEDB_ASSIGN_OR_RETURN(double a, ArgNumber(args, 0, "min(a, b)"));
        GAMEDB_ASSIGN_OR_RETURN(double b, ArgNumber(args, 1, "min(a, b)"));
        return Value(std::min(a, b));
      });
  interp->RegisterBuiltin(
      "max", [](std::vector<Value>& args, Interpreter&) -> Result<Value> {
        GAMEDB_RETURN_NOT_OK(ExpectArgs(args, 2, "max(a, b)"));
        GAMEDB_ASSIGN_OR_RETURN(double a, ArgNumber(args, 0, "max(a, b)"));
        GAMEDB_ASSIGN_OR_RETURN(double b, ArgNumber(args, 1, "max(a, b)"));
        return Value(std::max(a, b));
      });
  interp->RegisterBuiltin(
      "clamp", [](std::vector<Value>& args, Interpreter&) -> Result<Value> {
        GAMEDB_RETURN_NOT_OK(ExpectArgs(args, 3, "clamp(x, lo, hi)"));
        GAMEDB_ASSIGN_OR_RETURN(double x, ArgNumber(args, 0, "clamp"));
        GAMEDB_ASSIGN_OR_RETURN(double lo, ArgNumber(args, 1, "clamp"));
        GAMEDB_ASSIGN_OR_RETURN(double hi, ArgNumber(args, 2, "clamp"));
        return Value(std::clamp(x, lo, hi));
      });

  interp->RegisterBuiltin(
      "vec3", [](std::vector<Value>& args, Interpreter&) -> Result<Value> {
        GAMEDB_RETURN_NOT_OK(ExpectArgs(args, 3, "vec3(x, y, z)"));
        GAMEDB_ASSIGN_OR_RETURN(double x, ArgNumber(args, 0, "vec3"));
        GAMEDB_ASSIGN_OR_RETURN(double y, ArgNumber(args, 1, "vec3"));
        GAMEDB_ASSIGN_OR_RETURN(double z, ArgNumber(args, 2, "vec3"));
        return Value(Vec3(static_cast<float>(x), static_cast<float>(y),
                          static_cast<float>(z)));
      });
  auto vec_component = [interp](const char* name, int axis) {
    interp->RegisterBuiltin(
        name, [axis](std::vector<Value>& args, Interpreter&) -> Result<Value> {
          GAMEDB_RETURN_NOT_OK(ExpectArgs(args, 1, "vx/vy/vz(v)"));
          GAMEDB_ASSIGN_OR_RETURN(Vec3 v, ArgVec3(args, 0, "vx/vy/vz(v)"));
          return Value(static_cast<double>(axis == 0 ? v.x
                                           : axis == 1 ? v.y
                                                       : v.z));
        });
  };
  vec_component("vx", 0);
  vec_component("vy", 1);
  vec_component("vz", 2);
  interp->RegisterBuiltin(
      "distance", [](std::vector<Value>& args, Interpreter&) -> Result<Value> {
        GAMEDB_RETURN_NOT_OK(ExpectArgs(args, 2, "distance(a, b)"));
        GAMEDB_ASSIGN_OR_RETURN(Vec3 a, ArgVec3(args, 0, "distance(a, b)"));
        GAMEDB_ASSIGN_OR_RETURN(Vec3 b, ArgVec3(args, 1, "distance(a, b)"));
        return Value(static_cast<double>(a.DistanceTo(b)));
      });
  interp->RegisterBuiltin(
      "length", [](std::vector<Value>& args, Interpreter&) -> Result<Value> {
        GAMEDB_RETURN_NOT_OK(ExpectArgs(args, 1, "length(v)"));
        GAMEDB_ASSIGN_OR_RETURN(Vec3 v, ArgVec3(args, 0, "length(v)"));
        return Value(static_cast<double>(v.Length()));
      });

  interp->RegisterBuiltin(
      "len", [](std::vector<Value>& args, Interpreter&) -> Result<Value> {
        GAMEDB_RETURN_NOT_OK(ExpectArgs(args, 1, "len(list)"));
        GAMEDB_ASSIGN_OR_RETURN(ValueList l, ArgList(args, 0, "len(list)"));
        return Value(static_cast<double>(l->size()));
      });
  interp->RegisterBuiltin(
      "push", [](std::vector<Value>& args, Interpreter&) -> Result<Value> {
        GAMEDB_RETURN_NOT_OK(ExpectArgs(args, 2, "push(list, v)"));
        GAMEDB_ASSIGN_OR_RETURN(ValueList l, ArgList(args, 0, "push(list, v)"));
        l->push_back(args[1]);
        return args[0];
      });
  interp->RegisterBuiltin(
      "at", [](std::vector<Value>& args, Interpreter&) -> Result<Value> {
        GAMEDB_RETURN_NOT_OK(ExpectArgs(args, 2, "at(list, i)"));
        GAMEDB_ASSIGN_OR_RETURN(ValueList l, ArgList(args, 0, "at(list, i)"));
        GAMEDB_ASSIGN_OR_RETURN(double di, ArgNumber(args, 1, "at(list, i)"));
        auto i = static_cast<int64_t>(di);
        if (i < 0 || static_cast<size_t>(i) >= l->size()) {
          return Status::OutOfRange(
              StringFormat("index %lld out of range (len %zu)",
                           static_cast<long long>(i), l->size()));
        }
        return (*l)[static_cast<size_t>(i)];
      });
  interp->RegisterBuiltin(
      "set_at", [](std::vector<Value>& args, Interpreter&) -> Result<Value> {
        GAMEDB_RETURN_NOT_OK(ExpectArgs(args, 3, "set_at(list, i, v)"));
        GAMEDB_ASSIGN_OR_RETURN(ValueList l, ArgList(args, 0, "set_at"));
        GAMEDB_ASSIGN_OR_RETURN(double di, ArgNumber(args, 1, "set_at"));
        auto i = static_cast<int64_t>(di);
        if (i < 0 || static_cast<size_t>(i) >= l->size()) {
          return Status::OutOfRange("set_at index out of range");
        }
        (*l)[static_cast<size_t>(i)] = args[2];
        return args[0];
      });
  interp->RegisterBuiltin(
      "range", [](std::vector<Value>& args, Interpreter&) -> Result<Value> {
        GAMEDB_RETURN_NOT_OK(ExpectArgs(args, 1, "range(n)"));
        GAMEDB_ASSIGN_OR_RETURN(double dn, ArgNumber(args, 0, "range(n)"));
        auto n = static_cast<int64_t>(dn);
        if (n < 0 || n > 10'000'000) {
          return Status::InvalidArgument("range(n): n out of bounds");
        }
        std::vector<Value> items;
        items.reserve(static_cast<size_t>(n));
        for (int64_t i = 0; i < n; ++i) {
          items.emplace_back(static_cast<double>(i));
        }
        return Value::NewList(std::move(items));
      });

  interp->RegisterBuiltin(
      "random", [](std::vector<Value>& args, Interpreter& in) -> Result<Value> {
        GAMEDB_RETURN_NOT_OK(ExpectArgs(args, 0, "random()"));
        return Value(in.rng().NextDouble());
      });
  interp->RegisterBuiltin(
      "random_int",
      [](std::vector<Value>& args, Interpreter& in) -> Result<Value> {
        GAMEDB_RETURN_NOT_OK(ExpectArgs(args, 2, "random_int(lo, hi)"));
        GAMEDB_ASSIGN_OR_RETURN(double lo, ArgNumber(args, 0, "random_int"));
        GAMEDB_ASSIGN_OR_RETURN(double hi, ArgNumber(args, 1, "random_int"));
        if (lo > hi) return Status::InvalidArgument("random_int: lo > hi");
        return Value(static_cast<double>(in.rng().NextInt(
            static_cast<int64_t>(lo), static_cast<int64_t>(hi))));
      });
}

}  // namespace gamedb::script
