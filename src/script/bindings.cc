#include "script/bindings.h"

#include <algorithm>

#include "common/string_util.h"
#include "core/query.h"
#include "script/builtins.h"
#include "views/maintainer.h"

namespace gamedb::script {

Effect<double>& ScriptEffects::Channel(const std::string& name) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = channels_.find(name);
    if (it != channels_.end()) return *it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto [it, inserted] =
      channels_.try_emplace(name, nullptr);
  if (inserted) it->second = std::make_unique<Effect<double>>(shards_);
  return *it->second;
}

void ScriptEffects::Drain(const std::string& name,
                          const std::function<void(EntityId, double)>& apply) {
  auto it = channels_.find(name);
  if (it == channels_.end()) return;
  it->second->Drain([&](EntityId e, const double& v) { apply(e, v); });
}

size_t ScriptEffects::contribution_count() const {
  size_t n = 0;
  for (const auto& [name, ch] : channels_) n += ch->contribution_count();
  return n;
}

void ScriptEffects::Clear() {
  for (auto& [name, ch] : channels_) ch->Clear();
}

std::vector<std::string> ScriptEffects::ChannelNames() const {
  std::vector<std::string> names;
  names.reserve(channels_.size());
  for (const auto& [name, ch] : channels_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

void DeferredOps::Push(size_t shard, DeferredOp op) {
  GAMEDB_DCHECK(shard < shards_.size());
  shards_[shard].push_back(std::move(op));
}

size_t DeferredOps::size() const {
  size_t n = 0;
  for (const auto& s : shards_) n += s.size();
  return n;
}

size_t DeferredOps::Apply(World* world, size_t* skipped) {
  size_t applied = 0;
  size_t skip = 0;
  for (auto& shard : shards_) {
    for (DeferredOp& op : shard) {
      switch (op.kind) {
        case DeferredOp::Kind::kDestroy:
          if (world->Alive(op.entity)) {
            world->Destroy(op.entity);
            ++applied;
          } else {
            ++skip;
          }
          break;
        case DeferredOp::Kind::kAdd: {
          ComponentStore* store = world->StoreById(op.type_id);
          if (!world->Alive(op.entity) || store == nullptr) {
            ++skip;
            break;
          }
          store->EmplaceDefault(op.entity);
          ++applied;
          break;
        }
        case DeferredOp::Kind::kRemove: {
          ComponentStore* store = world->StoreById(op.type_id);
          if (store != nullptr && store->Erase(op.entity)) {
            ++applied;
          } else {
            ++skip;
          }
          break;
        }
        case DeferredOp::Kind::kSet: {
          ComponentStore* store = world->StoreById(op.type_id);
          if (!world->Alive(op.entity) || store == nullptr) {
            ++skip;
            break;
          }
          // PatchRaw keeps maintained aggregates / delta tracking
          // consistent, exactly like the direct set path.
          Status set_status = Status::OK();
          bool found = store->PatchRaw(op.entity, [&](void* c) {
            set_status = op.field->Set(c, op.value);
          });
          if (found && set_status.ok()) {
            ++applied;
          } else {
            ++skip;  // component removed (or type error) since record time
          }
          break;
        }
        case DeferredOp::Kind::kTouch: {
          // kDirectChecked already wrote the field in place during the
          // query phase; replaying the Touch here reproduces kDefer's
          // version-bump / change-capture stream op-for-op.
          ComponentStore* store = world->StoreById(op.type_id);
          if (world->Alive(op.entity) && store != nullptr &&
              store->Contains(op.entity)) {
            store->Touch(op.entity);
            ++applied;
          } else {
            ++skip;
          }
          break;
        }
      }
    }
    shard.clear();
  }
  if (skipped != nullptr) *skipped = skip;
  return applied;
}

void DeferredOps::Clear() {
  for (auto& s : shards_) s.clear();
}

namespace {

/// Converts a script Value to a reflection FieldValue.
Result<FieldValue> ToFieldValue(const Value& v) {
  if (v.IsNumber()) return FieldValue(v.AsNumber());
  if (v.IsBool()) return FieldValue(v.AsBool());
  if (v.IsString()) return FieldValue(v.AsString());
  if (v.IsEntity()) return FieldValue(v.AsEntity());
  if (v.IsVec3()) return FieldValue(v.AsVec3());
  return Status::InvalidArgument(std::string("cannot store ") + v.TypeName() +
                                 " in a component field");
}

/// Converts a reflection FieldValue to a script Value.
Value FromFieldValue(const FieldValue& v) {
  if (const double* d = std::get_if<double>(&v)) return Value(*d);
  if (const int64_t* i = std::get_if<int64_t>(&v)) {
    return Value(static_cast<double>(*i));
  }
  if (const bool* b = std::get_if<bool>(&v)) return Value(*b);
  if (const Vec3* vec = std::get_if<Vec3>(&v)) return Value(*vec);
  if (const std::string* s = std::get_if<std::string>(&v)) return Value(*s);
  return Value(std::get<EntityId>(v));
}

Result<CmpOp> ParseCmpOp(const std::string& op) {
  if (op == "==") return CmpOp::kEq;
  if (op == "!=") return CmpOp::kNe;
  if (op == "<") return CmpOp::kLt;
  if (op == "<=") return CmpOp::kLe;
  if (op == ">") return CmpOp::kGt;
  if (op == ">=") return CmpOp::kGe;
  return Status::InvalidArgument("unknown comparison operator '" + op + "'");
}

/// Looks up component + field or fails with a script-friendly message.
Result<const FieldInfo*> ResolveField(const std::string& comp,
                                      const std::string& field,
                                      const TypeInfo** info_out) {
  const TypeInfo* info = TypeRegistry::Global().FindByName(comp);
  if (info == nullptr) {
    return Status::NotFound("unknown component '" + comp + "'");
  }
  const FieldInfo* f = info->FindField(field);
  if (f == nullptr) {
    return Status::NotFound("component '" + comp + "' has no field '" +
                            field + "'");
  }
  *info_out = info;
  return f;
}

/// Whether FieldInfo::Set would accept this value kind for this field type
/// (mirrors the conversion matrix in reflect.cc), so deferred sets surface
/// type errors at the call site in the query phase, not silently at apply.
bool ConvertibleTo(FieldType type, const FieldValue& v) {
  switch (type) {
    case FieldType::kFloat:
    case FieldType::kDouble:
    case FieldType::kInt32:
    case FieldType::kUInt32:
    case FieldType::kInt64:
    case FieldType::kUInt64:
    case FieldType::kBool:
      return std::holds_alternative<double>(v) ||
             std::holds_alternative<int64_t>(v) ||
             std::holds_alternative<bool>(v);
    case FieldType::kVec3:
      return std::holds_alternative<Vec3>(v);
    case FieldType::kString:
      return std::holds_alternative<std::string>(v);
    case FieldType::kEntity:
      return std::holds_alternative<EntityId>(v);
  }
  return false;
}

Status ReadOnlyPhaseError(const char* name) {
  return Status::NotSupported(
      std::string(name) +
      " mutates the world; the scripted query phase is read-only — emit() an "
      "effect and apply it from the host instead");
}

}  // namespace

void BindWorld(Interpreter* interp, World* world, ScriptEffects* effects,
               WorldBindOptions options) {
  GAMEDB_CHECK((options.mutations != MutationPolicy::kDefer &&
                options.mutations != MutationPolicy::kDirectChecked) ||
               options.deferred != nullptr);
  const MutationPolicy policy = options.mutations;
  DeferredOps* deferred = options.deferred;
  const size_t shard = options.shard;
  QueryPlanHook* planner = options.planner;
  DirectWriteGate* gate = options.direct_gate;

  interp->RegisterBuiltin(
      "spawn",
      [world, policy](std::vector<Value>& args, Interpreter&) -> Result<Value> {
        GAMEDB_RETURN_NOT_OK(ExpectArgs(args, 0, "spawn()"));
        if (policy != MutationPolicy::kDirect) {
          // Even under kDefer: a fresh entity id cannot be handed to the
          // script before the apply phase allocates it.
          return Status::NotSupported(
              "spawn() is not available during the parallel query phase "
              "(entity ids are allocated in the apply phase); spawn from the "
              "host or a trigger handler instead");
        }
        return Value(world->Create());
      });
  interp->RegisterBuiltin(
      "destroy",
      [world, policy, deferred, shard](std::vector<Value>& args,
                                       Interpreter&) -> Result<Value> {
        GAMEDB_RETURN_NOT_OK(ExpectArgs(args, 1, "destroy(e)"));
        GAMEDB_ASSIGN_OR_RETURN(EntityId e, ArgEntity(args, 0, "destroy(e)"));
        switch (policy) {
          case MutationPolicy::kReject:
            return ReadOnlyPhaseError("destroy()");
          case MutationPolicy::kDefer:
          case MutationPolicy::kDirectChecked:
            // destroy() is structural, so the analysis never admits it to
            // the in-place path — kDirectChecked defers like kDefer.
            deferred->Push(shard,
                           DeferredOp{DeferredOp::Kind::kDestroy, e, 0,
                                      nullptr, FieldValue()});
            return Value::Nil();
          case MutationPolicy::kDirect:
            world->Destroy(e);
            return Value::Nil();
        }
        return Value::Nil();
      });
  interp->RegisterBuiltin(
      "is_alive",
      [world](std::vector<Value>& args, Interpreter&) -> Result<Value> {
        GAMEDB_RETURN_NOT_OK(ExpectArgs(args, 1, "is_alive(e)"));
        GAMEDB_ASSIGN_OR_RETURN(EntityId e, ArgEntity(args, 0, "is_alive(e)"));
        return Value(world->Alive(e));
      });
  interp->RegisterBuiltin(
      "has", [world](std::vector<Value>& args, Interpreter&) -> Result<Value> {
        GAMEDB_RETURN_NOT_OK(ExpectArgs(args, 2, "has(e, \"Comp\")"));
        GAMEDB_ASSIGN_OR_RETURN(EntityId e, ArgEntity(args, 0, "has"));
        GAMEDB_ASSIGN_OR_RETURN(std::string comp, ArgString(args, 1, "has"));
        const TypeInfo* info = TypeRegistry::Global().FindByName(comp);
        if (info == nullptr) {
          return Status::NotFound("unknown component '" + comp + "'");
        }
        // Non-creating lookup: reads must not grow the store map (they run
        // concurrently during the scripted query phase).
        const ComponentStore* store = world->StoreByIdIfExists(info->id());
        return Value(store != nullptr && store->Contains(e));
      });
  interp->RegisterBuiltin(
      "add",
      [world, policy, deferred, shard](std::vector<Value>& args,
                                       Interpreter&) -> Result<Value> {
        GAMEDB_RETURN_NOT_OK(ExpectArgs(args, 2, "add(e, \"Comp\")"));
        GAMEDB_ASSIGN_OR_RETURN(EntityId e, ArgEntity(args, 0, "add"));
        GAMEDB_ASSIGN_OR_RETURN(std::string comp, ArgString(args, 1, "add"));
        if (policy == MutationPolicy::kReject) {
          return ReadOnlyPhaseError("add()");
        }
        if (!world->Alive(e)) {
          return Status::InvalidArgument("entity is dead");
        }
        const TypeInfo* info = TypeRegistry::Global().FindByName(comp);
        if (info == nullptr) {
          return Status::NotFound("unknown component '" + comp + "'");
        }
        if (policy != MutationPolicy::kDirect) {
          // Structural — always deferred, under kDirectChecked too.
          deferred->Push(shard, DeferredOp{DeferredOp::Kind::kAdd, e,
                                           info->id(), nullptr, FieldValue()});
          return Value::Nil();
        }
        world->StoreById(info->id())->EmplaceDefault(e);
        return Value::Nil();
      });
  interp->RegisterBuiltin(
      "remove",
      [world, policy, deferred, shard](std::vector<Value>& args,
                                       Interpreter&) -> Result<Value> {
        GAMEDB_RETURN_NOT_OK(ExpectArgs(args, 2, "remove(e, \"Comp\")"));
        GAMEDB_ASSIGN_OR_RETURN(EntityId e, ArgEntity(args, 0, "remove"));
        GAMEDB_ASSIGN_OR_RETURN(std::string comp, ArgString(args, 1, "remove"));
        if (policy == MutationPolicy::kReject) {
          return ReadOnlyPhaseError("remove()");
        }
        const TypeInfo* info = TypeRegistry::Global().FindByName(comp);
        if (info == nullptr) {
          return Status::NotFound("unknown component '" + comp + "'");
        }
        if (policy != MutationPolicy::kDirect) {
          deferred->Push(shard, DeferredOp{DeferredOp::Kind::kRemove, e,
                                           info->id(), nullptr, FieldValue()});
          // Deferred answer: was the component present at call time (the
          // tick-start state this read-only phase observes)?
          const ComponentStore* store = world->StoreByIdIfExists(info->id());
          return Value(store != nullptr && store->Contains(e));
        }
        ComponentStore* store = world->StoreById(info->id());
        return Value(store->Erase(e));
      });

  interp->RegisterBuiltin(
      "get", [world](std::vector<Value>& args, Interpreter&) -> Result<Value> {
        GAMEDB_RETURN_NOT_OK(ExpectArgs(args, 3, "get(e, \"Comp\", \"field\")"));
        GAMEDB_ASSIGN_OR_RETURN(EntityId e, ArgEntity(args, 0, "get"));
        GAMEDB_ASSIGN_OR_RETURN(std::string comp, ArgString(args, 1, "get"));
        GAMEDB_ASSIGN_OR_RETURN(std::string field, ArgString(args, 2, "get"));
        const TypeInfo* info = nullptr;
        GAMEDB_ASSIGN_OR_RETURN(const FieldInfo* f,
                                ResolveField(comp, field, &info));
        // Non-creating lookup (see `has`): a missing table reads the same
        // as an entity without the component.
        const ComponentStore* store = world->StoreByIdIfExists(info->id());
        const void* c = store == nullptr ? nullptr : store->Find(e);
        if (c == nullptr) {
          return Status::NotFound("entity has no '" + comp + "'");
        }
        return FromFieldValue(f->Get(c));
      });
  interp->RegisterBuiltin(
      "set",
      [world, policy, deferred, shard, gate](std::vector<Value>& args,
                                             Interpreter&) -> Result<Value> {
        GAMEDB_RETURN_NOT_OK(
            ExpectArgs(args, 4, "set(e, \"Comp\", \"field\", v)"));
        GAMEDB_ASSIGN_OR_RETURN(EntityId e, ArgEntity(args, 0, "set"));
        GAMEDB_ASSIGN_OR_RETURN(std::string comp, ArgString(args, 1, "set"));
        GAMEDB_ASSIGN_OR_RETURN(std::string field, ArgString(args, 2, "set"));
        if (policy == MutationPolicy::kReject) {
          return ReadOnlyPhaseError("set()");
        }
        const TypeInfo* info = nullptr;
        GAMEDB_ASSIGN_OR_RETURN(const FieldInfo* f,
                                ResolveField(comp, field, &info));
        GAMEDB_ASSIGN_OR_RETURN(FieldValue fv, ToFieldValue(args[3]));
        if (policy != MutationPolicy::kDirect) {
          // Validate against tick-start state so the script fails at the
          // call site, then postpone the write to the apply phase.
          // Non-creating lookup: the store map must not grow on pool
          // threads (ScriptHost::PrewarmStores pre-created the tables).
          ComponentStore* store = world->StoreByIdIfExists(info->id());
          if (store == nullptr || !store->Contains(e)) {
            return Status::NotFound("entity has no '" + comp + "'");
          }
          if (!ConvertibleTo(f->type(), fv)) {
            return Status::InvalidArgument(
                "cannot store " + FieldValueToString(fv) + " in field '" +
                field + "' of '" + comp + "'");
          }
          if (policy == MutationPolicy::kDirectChecked && gate != nullptr &&
              gate->enabled) {
            if (e == gate->current[shard]) {
              // Proven-disjoint fast path: write the field in place now,
              // defer only a Touch so the apply phase reproduces kDefer's
              // version/change-capture stream exactly. The raw Set (no
              // Patch) avoids bumping the table's shared version counter
              // from a pool thread; the host checked the table has no
              // observers before enabling the gate.
              void* c = store->Find(e);
              GAMEDB_RETURN_NOT_OK(f->Set(c, fv));
              deferred->Push(shard,
                             DeferredOp{DeferredOp::Kind::kTouch, e,
                                        info->id(), nullptr, FieldValue()});
              ++gate->direct_writes[shard];
              return Value::Nil();
            }
            // The analysis only admits self-writes, so a foreign target
            // here means it was wrong (or raced) — count it and fall back
            // to the safe deferred buffer rather than trust the summary.
            ++gate->redirected[shard];
          }
          deferred->Push(shard, DeferredOp{DeferredOp::Kind::kSet, e,
                                           info->id(), f, std::move(fv)});
          return Value::Nil();
        }
        ComponentStore* store = world->StoreById(info->id());
        // PatchRaw notifies observers with correct old/new values, keeping
        // maintained aggregates and delta tracking consistent.
        Status set_status = Status::OK();
        bool found = store->PatchRaw(e, [&](void* c) {
          set_status = f->Set(c, fv);
        });
        if (!found) {
          return Status::NotFound("entity has no '" + comp + "'");
        }
        GAMEDB_RETURN_NOT_OK(set_status);
        return Value::Nil();
      });

  interp->RegisterBuiltin(
      "entities_with",
      [world, planner](std::vector<Value>& args,
                       Interpreter&) -> Result<Value> {
        GAMEDB_RETURN_NOT_OK(ExpectArgs(args, 1, "entities_with(\"Comp\")"));
        GAMEDB_ASSIGN_OR_RETURN(std::string comp,
                                ArgString(args, 0, "entities_with"));
        DynamicQuery q(world);
        q.SetPlanner(planner).With(comp);
        GAMEDB_ASSIGN_OR_RETURN(std::vector<EntityId> ids, q.Collect());
        std::vector<Value> items;
        items.reserve(ids.size());
        for (EntityId e : ids) items.push_back(Value(e));
        return Value::NewList(std::move(items));
      });

  interp->RegisterBuiltin(
      "count",
      [world, planner](std::vector<Value>& args,
                       Interpreter&) -> Result<Value> {
        GAMEDB_RETURN_NOT_OK(ExpectArgs(args, 1, "count(\"Comp\")"));
        GAMEDB_ASSIGN_OR_RETURN(std::string comp, ArgString(args, 0, "count"));
        DynamicQuery q(world);
        q.SetPlanner(planner).With(comp);
        GAMEDB_ASSIGN_OR_RETURN(int64_t n, q.Count());
        return Value(static_cast<double>(n));
      });

  auto aggregate = [world, interp, planner](const char* name, int which) {
    interp->RegisterBuiltin(
        name,
        [world, which, name, planner](std::vector<Value>& args,
                                      Interpreter&) -> Result<Value> {
          std::string sig = std::string(name) + "(\"Comp\", \"field\")";
          GAMEDB_RETURN_NOT_OK(ExpectArgs(args, 2, sig.c_str()));
          GAMEDB_ASSIGN_OR_RETURN(std::string comp,
                                  ArgString(args, 0, sig.c_str()));
          GAMEDB_ASSIGN_OR_RETURN(std::string field,
                                  ArgString(args, 1, sig.c_str()));
          DynamicQuery q(world);
          q.SetPlanner(planner);
          Result<double> r =
              which == 0   ? q.Sum(comp, field)
              : which == 1 ? q.Min(comp, field)
              : which == 2 ? q.Max(comp, field)
                           : q.Avg(comp, field);
          if (!r.ok()) {
            if (r.status().IsNotFound() && which != 0) {
              return Value::Nil();  // min/max/avg over empty table -> nil
            }
            return r.status();
          }
          return Value(*r);
        });
  };
  aggregate("sum", 0);
  aggregate("smin", 1);
  aggregate("smax", 2);
  aggregate("avg", 3);

  auto arg_extreme = [world, interp, planner](const char* name, bool is_min) {
    interp->RegisterBuiltin(
        name,
        [world, is_min, name, planner](std::vector<Value>& args,
                                       Interpreter&) -> Result<Value> {
          std::string sig = std::string(name) + "(\"Comp\", \"field\")";
          GAMEDB_RETURN_NOT_OK(ExpectArgs(args, 2, sig.c_str()));
          GAMEDB_ASSIGN_OR_RETURN(std::string comp,
                                  ArgString(args, 0, sig.c_str()));
          GAMEDB_ASSIGN_OR_RETURN(std::string field,
                                  ArgString(args, 1, sig.c_str()));
          DynamicQuery q(world);
          q.SetPlanner(planner);
          Result<EntityId> r =
              is_min ? q.ArgMin(comp, field) : q.ArgMax(comp, field);
          if (!r.ok()) {
            if (r.status().IsNotFound()) return Value::Nil();
            return r.status();
          }
          return Value(*r);
        });
  };
  arg_extreme("argmin", true);
  arg_extreme("argmax", false);

  interp->RegisterBuiltin(
      "where",
      [world, planner](std::vector<Value>& args,
                       Interpreter&) -> Result<Value> {
        const char* sig = "where(\"Comp\", \"field\", \"op\", v)";
        GAMEDB_RETURN_NOT_OK(ExpectArgs(args, 4, sig));
        GAMEDB_ASSIGN_OR_RETURN(std::string comp, ArgString(args, 0, sig));
        GAMEDB_ASSIGN_OR_RETURN(std::string field, ArgString(args, 1, sig));
        GAMEDB_ASSIGN_OR_RETURN(std::string op_str, ArgString(args, 2, sig));
        GAMEDB_ASSIGN_OR_RETURN(CmpOp op, ParseCmpOp(op_str));
        GAMEDB_ASSIGN_OR_RETURN(FieldValue rhs, ToFieldValue(args[3]));
        DynamicQuery q(world);
        q.SetPlanner(planner).WhereField(comp, field, op, std::move(rhs));
        GAMEDB_ASSIGN_OR_RETURN(std::vector<EntityId> ids, q.Collect());
        std::vector<Value> items;
        items.reserve(ids.size());
        for (EntityId e : ids) items.push_back(Value(e));
        return Value::NewList(std::move(items));
      });

  interp->RegisterBuiltin(
      "within",
      [world, planner](std::vector<Value>& args,
                       Interpreter&) -> Result<Value> {
        const char* sig = "within(center, radius)";
        GAMEDB_RETURN_NOT_OK(ExpectArgs(args, 2, sig));
        GAMEDB_ASSIGN_OR_RETURN(Vec3 center, ArgVec3(args, 0, sig));
        GAMEDB_ASSIGN_OR_RETURN(double radius, ArgNumber(args, 1, sig));
        DynamicQuery q(world);
        q.SetPlanner(planner).WithinRadius("Position", "value", center,
                                           static_cast<float>(radius));
        GAMEDB_ASSIGN_OR_RETURN(std::vector<EntityId> ids, q.Collect());
        std::vector<Value> items;
        items.reserve(ids.size());
        for (EntityId e : ids) items.push_back(Value(e));
        return Value::NewList(std::move(items));
      });

  interp->RegisterBuiltin(
      "emit",
      [effects, shard](std::vector<Value>& args,
                       Interpreter&) -> Result<Value> {
        const char* sig = "emit(\"channel\", target, amount)";
        GAMEDB_RETURN_NOT_OK(ExpectArgs(args, 3, sig));
        if (effects == nullptr) {
          return Status::NotSupported("this host has no effect channels");
        }
        GAMEDB_ASSIGN_OR_RETURN(std::string channel, ArgString(args, 0, sig));
        GAMEDB_ASSIGN_OR_RETURN(EntityId target, ArgEntity(args, 1, sig));
        GAMEDB_ASSIGN_OR_RETURN(double amount, ArgNumber(args, 2, sig));
        effects->Channel(channel).Contribute(shard, target, amount);
        return Value::Nil();
      });

  interp->RegisterBuiltin(
      "tick", [world](std::vector<Value>& args, Interpreter&) -> Result<Value> {
        GAMEDB_RETURN_NOT_OK(ExpectArgs(args, 0, "tick()"));
        return Value(static_cast<double>(world->tick()));
      });
}

void BindWorld(Interpreter* interp, World* world, ScriptEffects* effects,
               size_t shard) {
  WorldBindOptions options;
  options.shard = shard;
  BindWorld(interp, world, effects, options);
}

namespace {

Result<const views::LiveView*> FindView(views::ViewCatalog* catalog,
                                        const std::string& name,
                                        const char* builtin) {
  const views::LiveView* view = catalog->Find(name);
  if (view == nullptr) {
    return Status::NotFound(std::string(builtin) + ": no view named '" +
                            name + "'");
  }
  return view;
}

}  // namespace

void BindViews(Interpreter* interp, views::ViewCatalog* catalog) {
  interp->RegisterBuiltin(
      "view_count",
      [catalog](std::vector<Value>& args, Interpreter&) -> Result<Value> {
        GAMEDB_RETURN_NOT_OK(ExpectArgs(args, 1, "view_count(\"name\")"));
        GAMEDB_ASSIGN_OR_RETURN(std::string name,
                                ArgString(args, 0, "view_count"));
        GAMEDB_ASSIGN_OR_RETURN(const views::LiveView* view,
                                FindView(catalog, name, "view_count"));
        return Value(static_cast<double>(view->size()));
      });

  interp->RegisterBuiltin(
      "view_contains",
      [catalog](std::vector<Value>& args, Interpreter&) -> Result<Value> {
        GAMEDB_RETURN_NOT_OK(
            ExpectArgs(args, 2, "view_contains(\"name\", e)"));
        GAMEDB_ASSIGN_OR_RETURN(std::string name,
                                ArgString(args, 0, "view_contains"));
        GAMEDB_ASSIGN_OR_RETURN(EntityId e,
                                ArgEntity(args, 1, "view_contains"));
        GAMEDB_ASSIGN_OR_RETURN(const views::LiveView* view,
                                FindView(catalog, name, "view_contains"));
        return Value(view->Contains(e));
      });

  interp->RegisterBuiltin(
      "view_members",
      [catalog](std::vector<Value>& args, Interpreter&) -> Result<Value> {
        GAMEDB_RETURN_NOT_OK(ExpectArgs(args, 1, "view_members(\"name\")"));
        GAMEDB_ASSIGN_OR_RETURN(std::string name,
                                ArgString(args, 0, "view_members"));
        GAMEDB_ASSIGN_OR_RETURN(const views::LiveView* view,
                                FindView(catalog, name, "view_members"));
        const std::vector<EntityId>& members = view->Members();
        std::vector<Value> items;
        items.reserve(members.size());
        for (EntityId e : members) items.push_back(Value(e));
        return Value::NewList(std::move(items));
      });

  interp->RegisterBuiltin(
      "view_aggregate",
      [catalog](std::vector<Value>& args, Interpreter&) -> Result<Value> {
        GAMEDB_RETURN_NOT_OK(
            ExpectArgs(args, 1, "view_aggregate(\"name\")"));
        GAMEDB_ASSIGN_OR_RETURN(std::string name,
                                ArgString(args, 0, "view_aggregate"));
        GAMEDB_ASSIGN_OR_RETURN(const views::LiveView* view,
                                FindView(catalog, name, "view_aggregate"));
        GAMEDB_ASSIGN_OR_RETURN(double v, view->Aggregate());
        return Value(v);
      });
}

}  // namespace gamedb::script
