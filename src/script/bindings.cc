#include "script/bindings.h"

#include "common/string_util.h"
#include "core/query.h"
#include "script/builtins.h"

namespace gamedb::script {

Effect<double>& ScriptEffects::Channel(const std::string& name) {
  auto it = channels_.find(name);
  if (it == channels_.end()) {
    it = channels_
             .emplace(name, std::make_unique<Effect<double>>(shards_))
             .first;
  }
  return *it->second;
}

void ScriptEffects::Drain(const std::string& name,
                          const std::function<void(EntityId, double)>& apply) {
  auto it = channels_.find(name);
  if (it == channels_.end()) return;
  it->second->Drain([&](EntityId e, const double& v) { apply(e, v); });
}

void ScriptEffects::Clear() {
  for (auto& [name, ch] : channels_) ch->Clear();
}

namespace {

/// Converts a script Value to a reflection FieldValue.
Result<FieldValue> ToFieldValue(const Value& v) {
  if (v.IsNumber()) return FieldValue(v.AsNumber());
  if (v.IsBool()) return FieldValue(v.AsBool());
  if (v.IsString()) return FieldValue(v.AsString());
  if (v.IsEntity()) return FieldValue(v.AsEntity());
  if (v.IsVec3()) return FieldValue(v.AsVec3());
  return Status::InvalidArgument(std::string("cannot store ") + v.TypeName() +
                                 " in a component field");
}

/// Converts a reflection FieldValue to a script Value.
Value FromFieldValue(const FieldValue& v) {
  if (const double* d = std::get_if<double>(&v)) return Value(*d);
  if (const int64_t* i = std::get_if<int64_t>(&v)) {
    return Value(static_cast<double>(*i));
  }
  if (const bool* b = std::get_if<bool>(&v)) return Value(*b);
  if (const Vec3* vec = std::get_if<Vec3>(&v)) return Value(*vec);
  if (const std::string* s = std::get_if<std::string>(&v)) return Value(*s);
  return Value(std::get<EntityId>(v));
}

Result<CmpOp> ParseCmpOp(const std::string& op) {
  if (op == "==") return CmpOp::kEq;
  if (op == "!=") return CmpOp::kNe;
  if (op == "<") return CmpOp::kLt;
  if (op == "<=") return CmpOp::kLe;
  if (op == ">") return CmpOp::kGt;
  if (op == ">=") return CmpOp::kGe;
  return Status::InvalidArgument("unknown comparison operator '" + op + "'");
}

/// Looks up component + field or fails with a script-friendly message.
Result<const FieldInfo*> ResolveField(const std::string& comp,
                                      const std::string& field,
                                      const TypeInfo** info_out) {
  const TypeInfo* info = TypeRegistry::Global().FindByName(comp);
  if (info == nullptr) {
    return Status::NotFound("unknown component '" + comp + "'");
  }
  const FieldInfo* f = info->FindField(field);
  if (f == nullptr) {
    return Status::NotFound("component '" + comp + "' has no field '" +
                            field + "'");
  }
  *info_out = info;
  return f;
}

}  // namespace

void BindWorld(Interpreter* interp, World* world, ScriptEffects* effects,
               size_t shard) {
  interp->RegisterBuiltin(
      "spawn", [world](std::vector<Value>& args, Interpreter&) -> Result<Value> {
        GAMEDB_RETURN_NOT_OK(ExpectArgs(args, 0, "spawn()"));
        return Value(world->Create());
      });
  interp->RegisterBuiltin(
      "destroy",
      [world](std::vector<Value>& args, Interpreter&) -> Result<Value> {
        GAMEDB_RETURN_NOT_OK(ExpectArgs(args, 1, "destroy(e)"));
        GAMEDB_ASSIGN_OR_RETURN(EntityId e, ArgEntity(args, 0, "destroy(e)"));
        world->Destroy(e);
        return Value::Nil();
      });
  interp->RegisterBuiltin(
      "is_alive",
      [world](std::vector<Value>& args, Interpreter&) -> Result<Value> {
        GAMEDB_RETURN_NOT_OK(ExpectArgs(args, 1, "is_alive(e)"));
        GAMEDB_ASSIGN_OR_RETURN(EntityId e, ArgEntity(args, 0, "is_alive(e)"));
        return Value(world->Alive(e));
      });
  interp->RegisterBuiltin(
      "has", [world](std::vector<Value>& args, Interpreter&) -> Result<Value> {
        GAMEDB_RETURN_NOT_OK(ExpectArgs(args, 2, "has(e, \"Comp\")"));
        GAMEDB_ASSIGN_OR_RETURN(EntityId e, ArgEntity(args, 0, "has"));
        GAMEDB_ASSIGN_OR_RETURN(std::string comp, ArgString(args, 1, "has"));
        ComponentStore* store = world->StoreByName(comp);
        if (store == nullptr) {
          return Status::NotFound("unknown component '" + comp + "'");
        }
        return Value(store->Contains(e));
      });
  interp->RegisterBuiltin(
      "add", [world](std::vector<Value>& args, Interpreter&) -> Result<Value> {
        GAMEDB_RETURN_NOT_OK(ExpectArgs(args, 2, "add(e, \"Comp\")"));
        GAMEDB_ASSIGN_OR_RETURN(EntityId e, ArgEntity(args, 0, "add"));
        GAMEDB_ASSIGN_OR_RETURN(std::string comp, ArgString(args, 1, "add"));
        if (!world->Alive(e)) {
          return Status::InvalidArgument("entity is dead");
        }
        ComponentStore* store = world->StoreByName(comp);
        if (store == nullptr) {
          return Status::NotFound("unknown component '" + comp + "'");
        }
        store->EmplaceDefault(e);
        return Value::Nil();
      });
  interp->RegisterBuiltin(
      "remove",
      [world](std::vector<Value>& args, Interpreter&) -> Result<Value> {
        GAMEDB_RETURN_NOT_OK(ExpectArgs(args, 2, "remove(e, \"Comp\")"));
        GAMEDB_ASSIGN_OR_RETURN(EntityId e, ArgEntity(args, 0, "remove"));
        GAMEDB_ASSIGN_OR_RETURN(std::string comp, ArgString(args, 1, "remove"));
        ComponentStore* store = world->StoreByName(comp);
        if (store == nullptr) {
          return Status::NotFound("unknown component '" + comp + "'");
        }
        return Value(store->Erase(e));
      });

  interp->RegisterBuiltin(
      "get", [world](std::vector<Value>& args, Interpreter&) -> Result<Value> {
        GAMEDB_RETURN_NOT_OK(ExpectArgs(args, 3, "get(e, \"Comp\", \"field\")"));
        GAMEDB_ASSIGN_OR_RETURN(EntityId e, ArgEntity(args, 0, "get"));
        GAMEDB_ASSIGN_OR_RETURN(std::string comp, ArgString(args, 1, "get"));
        GAMEDB_ASSIGN_OR_RETURN(std::string field, ArgString(args, 2, "get"));
        const TypeInfo* info = nullptr;
        GAMEDB_ASSIGN_OR_RETURN(const FieldInfo* f,
                                ResolveField(comp, field, &info));
        ComponentStore* store = world->StoreById(info->id());
        void* c = store->Find(e);
        if (c == nullptr) {
          return Status::NotFound("entity has no '" + comp + "'");
        }
        return FromFieldValue(f->Get(c));
      });
  interp->RegisterBuiltin(
      "set", [world](std::vector<Value>& args, Interpreter&) -> Result<Value> {
        GAMEDB_RETURN_NOT_OK(
            ExpectArgs(args, 4, "set(e, \"Comp\", \"field\", v)"));
        GAMEDB_ASSIGN_OR_RETURN(EntityId e, ArgEntity(args, 0, "set"));
        GAMEDB_ASSIGN_OR_RETURN(std::string comp, ArgString(args, 1, "set"));
        GAMEDB_ASSIGN_OR_RETURN(std::string field, ArgString(args, 2, "set"));
        const TypeInfo* info = nullptr;
        GAMEDB_ASSIGN_OR_RETURN(const FieldInfo* f,
                                ResolveField(comp, field, &info));
        ComponentStore* store = world->StoreById(info->id());
        GAMEDB_ASSIGN_OR_RETURN(FieldValue fv, ToFieldValue(args[3]));
        // PatchRaw notifies observers with correct old/new values, keeping
        // maintained aggregates and delta tracking consistent.
        Status set_status = Status::OK();
        bool found = store->PatchRaw(e, [&](void* c) {
          set_status = f->Set(c, fv);
        });
        if (!found) {
          return Status::NotFound("entity has no '" + comp + "'");
        }
        GAMEDB_RETURN_NOT_OK(set_status);
        return Value::Nil();
      });

  interp->RegisterBuiltin(
      "entities_with",
      [world](std::vector<Value>& args, Interpreter&) -> Result<Value> {
        GAMEDB_RETURN_NOT_OK(ExpectArgs(args, 1, "entities_with(\"Comp\")"));
        GAMEDB_ASSIGN_OR_RETURN(std::string comp,
                                ArgString(args, 0, "entities_with"));
        DynamicQuery q(world);
        q.With(comp);
        GAMEDB_ASSIGN_OR_RETURN(std::vector<EntityId> ids, q.Collect());
        std::vector<Value> items;
        items.reserve(ids.size());
        for (EntityId e : ids) items.push_back(Value(e));
        return Value::NewList(std::move(items));
      });

  interp->RegisterBuiltin(
      "count",
      [world](std::vector<Value>& args, Interpreter&) -> Result<Value> {
        GAMEDB_RETURN_NOT_OK(ExpectArgs(args, 1, "count(\"Comp\")"));
        GAMEDB_ASSIGN_OR_RETURN(std::string comp, ArgString(args, 0, "count"));
        DynamicQuery q(world);
        q.With(comp);
        GAMEDB_ASSIGN_OR_RETURN(int64_t n, q.Count());
        return Value(static_cast<double>(n));
      });

  auto aggregate = [world, interp](const char* name, int which) {
    interp->RegisterBuiltin(
        name,
        [world, which, name](std::vector<Value>& args,
                             Interpreter&) -> Result<Value> {
          std::string sig = std::string(name) + "(\"Comp\", \"field\")";
          GAMEDB_RETURN_NOT_OK(ExpectArgs(args, 2, sig.c_str()));
          GAMEDB_ASSIGN_OR_RETURN(std::string comp,
                                  ArgString(args, 0, sig.c_str()));
          GAMEDB_ASSIGN_OR_RETURN(std::string field,
                                  ArgString(args, 1, sig.c_str()));
          DynamicQuery q(world);
          Result<double> r =
              which == 0   ? q.Sum(comp, field)
              : which == 1 ? q.Min(comp, field)
              : which == 2 ? q.Max(comp, field)
                           : q.Avg(comp, field);
          if (!r.ok()) {
            if (r.status().IsNotFound() && which != 0) {
              return Value::Nil();  // min/max/avg over empty table -> nil
            }
            return r.status();
          }
          return Value(*r);
        });
  };
  aggregate("sum", 0);
  aggregate("smin", 1);
  aggregate("smax", 2);
  aggregate("avg", 3);

  auto arg_extreme = [world, interp](const char* name, bool is_min) {
    interp->RegisterBuiltin(
        name,
        [world, is_min, name](std::vector<Value>& args,
                              Interpreter&) -> Result<Value> {
          std::string sig = std::string(name) + "(\"Comp\", \"field\")";
          GAMEDB_RETURN_NOT_OK(ExpectArgs(args, 2, sig.c_str()));
          GAMEDB_ASSIGN_OR_RETURN(std::string comp,
                                  ArgString(args, 0, sig.c_str()));
          GAMEDB_ASSIGN_OR_RETURN(std::string field,
                                  ArgString(args, 1, sig.c_str()));
          DynamicQuery q(world);
          Result<EntityId> r =
              is_min ? q.ArgMin(comp, field) : q.ArgMax(comp, field);
          if (!r.ok()) {
            if (r.status().IsNotFound()) return Value::Nil();
            return r.status();
          }
          return Value(*r);
        });
  };
  arg_extreme("argmin", true);
  arg_extreme("argmax", false);

  interp->RegisterBuiltin(
      "where",
      [world](std::vector<Value>& args, Interpreter&) -> Result<Value> {
        const char* sig = "where(\"Comp\", \"field\", \"op\", v)";
        GAMEDB_RETURN_NOT_OK(ExpectArgs(args, 4, sig));
        GAMEDB_ASSIGN_OR_RETURN(std::string comp, ArgString(args, 0, sig));
        GAMEDB_ASSIGN_OR_RETURN(std::string field, ArgString(args, 1, sig));
        GAMEDB_ASSIGN_OR_RETURN(std::string op_str, ArgString(args, 2, sig));
        GAMEDB_ASSIGN_OR_RETURN(CmpOp op, ParseCmpOp(op_str));
        GAMEDB_ASSIGN_OR_RETURN(FieldValue rhs, ToFieldValue(args[3]));
        DynamicQuery q(world);
        q.WhereField(comp, field, op, std::move(rhs));
        GAMEDB_ASSIGN_OR_RETURN(std::vector<EntityId> ids, q.Collect());
        std::vector<Value> items;
        items.reserve(ids.size());
        for (EntityId e : ids) items.push_back(Value(e));
        return Value::NewList(std::move(items));
      });

  interp->RegisterBuiltin(
      "within",
      [world](std::vector<Value>& args, Interpreter&) -> Result<Value> {
        const char* sig = "within(center, radius)";
        GAMEDB_RETURN_NOT_OK(ExpectArgs(args, 2, sig));
        GAMEDB_ASSIGN_OR_RETURN(Vec3 center, ArgVec3(args, 0, sig));
        GAMEDB_ASSIGN_OR_RETURN(double radius, ArgNumber(args, 1, sig));
        DynamicQuery q(world);
        q.WithinRadius("Position", "value", center,
                       static_cast<float>(radius));
        GAMEDB_ASSIGN_OR_RETURN(std::vector<EntityId> ids, q.Collect());
        std::vector<Value> items;
        items.reserve(ids.size());
        for (EntityId e : ids) items.push_back(Value(e));
        return Value::NewList(std::move(items));
      });

  interp->RegisterBuiltin(
      "emit",
      [effects, shard](std::vector<Value>& args,
                       Interpreter&) -> Result<Value> {
        const char* sig = "emit(\"channel\", target, amount)";
        GAMEDB_RETURN_NOT_OK(ExpectArgs(args, 3, sig));
        if (effects == nullptr) {
          return Status::NotSupported("this host has no effect channels");
        }
        GAMEDB_ASSIGN_OR_RETURN(std::string channel, ArgString(args, 0, sig));
        GAMEDB_ASSIGN_OR_RETURN(EntityId target, ArgEntity(args, 1, sig));
        GAMEDB_ASSIGN_OR_RETURN(double amount, ArgNumber(args, 2, sig));
        effects->Channel(channel).Contribute(shard, target, amount);
        return Value::Nil();
      });

  interp->RegisterBuiltin(
      "tick", [world](std::vector<Value>& args, Interpreter&) -> Result<Value> {
        GAMEDB_RETURN_NOT_OK(ExpectArgs(args, 0, "tick()"));
        return Value(static_cast<double>(world->tick()));
      });
}

}  // namespace gamedb::script
