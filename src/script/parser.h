#pragma once

/// \file parser.h
/// Recursive-descent parser for GSL.
///
/// Grammar (EBNF-ish):
///   script   := decl*
///   decl     := 'fn' IDENT '(' params? ')' block
///             | 'on' IDENT '(' params? ')' block
///             | stmt
///   stmt     := 'let' IDENT '=' expr
///             | 'if' expr block ('else' (block | if-stmt))?
///             | 'while' expr block
///             | 'foreach' IDENT 'in' expr block
///             | 'return' expr? | 'break' | 'continue'
///             | IDENT '=' expr            (assignment)
///             | expr                      (expression statement)
///   expr     := or; or := and ('or' and)*; and := eq ('and' eq)*
///   eq       := cmp (('=='|'!=') cmp)*
///   cmp      := add (('<'|'<='|'>'|'>=') add)*
///   add      := mul (('+'|'-') mul)*; mul := unary (('*'|'/'|'%') unary)*
///   unary    := ('-'|'not') unary | primary
///   primary  := NUMBER | STRING | 'true' | 'false' | 'nil'
///             | IDENT | IDENT '(' args? ')' | '(' expr ')' | '[' args? ']'

#include <string>

#include "common/status.h"
#include "script/ast.h"

namespace gamedb::script {

/// Parses `source` into a Script named `name`. Errors carry line numbers.
Result<Script> Parse(std::string_view source, std::string name = "<script>");

}  // namespace gamedb::script
