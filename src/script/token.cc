#include "script/token.h"

namespace gamedb::script {

const char* TokenTypeName(TokenType t) {
  switch (t) {
    case TokenType::kNumber: return "number";
    case TokenType::kString: return "string";
    case TokenType::kIdent: return "identifier";
    case TokenType::kLet: return "'let'";
    case TokenType::kFn: return "'fn'";
    case TokenType::kOn: return "'on'";
    case TokenType::kIf: return "'if'";
    case TokenType::kElse: return "'else'";
    case TokenType::kWhile: return "'while'";
    case TokenType::kForeach: return "'foreach'";
    case TokenType::kIn: return "'in'";
    case TokenType::kReturn: return "'return'";
    case TokenType::kBreak: return "'break'";
    case TokenType::kContinue: return "'continue'";
    case TokenType::kTrue: return "'true'";
    case TokenType::kFalse: return "'false'";
    case TokenType::kNil: return "'nil'";
    case TokenType::kAnd: return "'and'";
    case TokenType::kOr: return "'or'";
    case TokenType::kNot: return "'not'";
    case TokenType::kLParen: return "'('";
    case TokenType::kRParen: return "')'";
    case TokenType::kLBrace: return "'{'";
    case TokenType::kRBrace: return "'}'";
    case TokenType::kLBracket: return "'['";
    case TokenType::kRBracket: return "']'";
    case TokenType::kComma: return "','";
    case TokenType::kAssign: return "'='";
    case TokenType::kPlus: return "'+'";
    case TokenType::kMinus: return "'-'";
    case TokenType::kStar: return "'*'";
    case TokenType::kSlash: return "'/'";
    case TokenType::kPercent: return "'%'";
    case TokenType::kEq: return "'=='";
    case TokenType::kNe: return "'!='";
    case TokenType::kLt: return "'<'";
    case TokenType::kLe: return "'<='";
    case TokenType::kGt: return "'>'";
    case TokenType::kGe: return "'>='";
    case TokenType::kEof: return "end of input";
  }
  return "?";
}

}  // namespace gamedb::script
