#pragma once

/// \file bindings.h
/// ECS bindings: the builtins that let GSL scripts address the game state
/// database by component/field name, run declarative queries, and emit
/// state-effect contributions instead of raw writes. This is the seam where
/// the tutorial's "declarative processing" [11, 13] meets the scripting
/// layer: scripts at the kDeclarative restriction level can ONLY express
/// bulk reads through these aggregate builtins, which the engine evaluates
/// with its indexes.
///
/// The same seam enforces the state-effect discipline when scripts run as a
/// *parallel query phase* (script/host.h): bindings bound with a gated
/// MutationPolicy stop the mutation builtins from writing the World directly
/// — a data race once interpreters run on pool threads — and instead defer
/// the writes into per-shard DeferredOps buffers the host replays in the
/// apply phase.

#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/query.h"
#include "core/state_effect.h"
#include "core/world.h"
#include "script/interpreter.h"

namespace gamedb::views {
class ViewCatalog;
}  // namespace gamedb::views

namespace gamedb::script {

/// Named effect channels scripts contribute into; the host drains them after
/// the scripted query phase (see core/state_effect.h).
///
/// Channel() is safe to call concurrently from query-phase shards (creation
/// of a new channel is serialized; the returned Effect collects into
/// per-shard buffers). The drain-side APIs (Drain / Clear /
/// contribution_count / HasChannel) belong to the sequential apply phase
/// and must not overlap the query phase.
class ScriptEffects {
 public:
  explicit ScriptEffects(size_t shards) : shards_(shards) {}

  /// Creates (or returns) the named channel.
  Effect<double>& Channel(const std::string& name);
  bool HasChannel(const std::string& name) const {
    return channels_.count(name) > 0;
  }

  /// Drains one channel (no-op if it was never contributed to).
  void Drain(const std::string& name,
             const std::function<void(EntityId, double)>& apply);

  /// Total contributions currently buffered across all channels.
  size_t contribution_count() const;

  /// Discards all buffered contributions.
  void Clear();

  /// Names of every channel created so far, sorted. Drain-side API (must
  /// not overlap the query phase); feeds schema enumeration for
  /// did-you-mean diagnostics.
  std::vector<std::string> ChannelNames() const;

  size_t shards() const { return shards_; }

 private:
  size_t shards_;
  /// Guards channels_ map structure only (emit from pool threads may create
  /// a channel lazily); Effect contents are per-shard and unsynchronized.
  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, std::unique_ptr<Effect<double>>> channels_;
};

/// How the world-mutating builtins (spawn / destroy / add / remove / set)
/// behave for a bound interpreter.
enum class MutationPolicy : uint8_t {
  /// Write the World immediately (single-threaded hosts; the default).
  kDirect,
  /// Record the mutation into per-shard DeferredOps buffers; the host
  /// replays them deterministically in the apply phase. spawn() is still
  /// rejected (an entity id cannot be allocated before the apply phase).
  kDefer,
  /// Reject with NotSupported: the query phase is read-only, scripts must
  /// emit() effects instead.
  kReject,
  /// Analysis-gated fast path: behaves exactly like kDefer, except that
  /// set() on the shard's *current* entity — when the host's DirectWriteGate
  /// is enabled for this tick — writes the field in place during the query
  /// phase and defers only a kTouch version bump. The host enables the gate
  /// only for packs the verifier's access-summary pass proved disjoint
  /// (script/analyzer.h DirectWriteEligible); every other mutation, and
  /// set() on any other entity, falls back to the kDefer buffers.
  kDirectChecked,
};

/// One world mutation recorded during a gated query phase. Component and
/// field names are resolved (and the entity's tick-start state validated)
/// at record time, so scripts still get errors at the call site; only the
/// write itself is postponed.
struct DeferredOp {
  enum class Kind : uint8_t { kSet, kAdd, kRemove, kDestroy, kTouch };
  Kind kind;
  EntityId entity;
  uint32_t type_id = 0;              // component (unused for kDestroy)
  const FieldInfo* field = nullptr;  // kSet only
  FieldValue value;                  // kSet only
};

/// Shared state for the MutationPolicy::kDirectChecked fast path. The host
/// owns one gate per ScriptHost; each query-phase shard's bindings hold a
/// pointer to it.
///
/// Thread-safety contract: `enabled` is written only at fork/join boundaries
/// (before the pool starts the tick's chunks, after it joins), so the pool's
/// own synchronization orders those writes against shard reads. The
/// per-shard slots (`current`, `direct_writes`, `redirected`) are written
/// exclusively by the thread running that shard's chunk.
struct DirectWriteGate {
  /// True only while the current tick's entry function was proven
  /// direct-write eligible by the access-summary analysis.
  bool enabled = false;
  /// Per-shard: the entity the shard is currently ticking. set() writes
  /// in place only when its target equals this (self-writes are the only
  /// writes the analysis admits).
  std::vector<EntityId> current;
  /// Per-shard stat counters, summed into ScriptHost::TickStats at join.
  std::vector<uint64_t> direct_writes;
  std::vector<uint64_t> redirected;
};

/// Per-shard buffers of deferred mutations. Contributions are recorded with
/// no synchronization (each query-phase shard owns its buffer); Apply
/// replays shards in shard order and ops in record order within a shard.
/// Because ParallelForChunks assigns contiguous ascending entity ranges to
/// ascending chunk ids, that replay order equals the order a single thread
/// would have produced — the apply phase is thread-count-independent.
class DeferredOps {
 public:
  explicit DeferredOps(size_t shards) : shards_(shards) {
    GAMEDB_CHECK(shards >= 1);
  }

  /// Records an op from `shard` (the query-phase chunk index).
  void Push(size_t shard, DeferredOp op);

  /// Ops currently buffered across all shards.
  size_t size() const;

  /// Replays all buffered ops against `world` and clears the buffers.
  /// Ops invalidated by earlier ops (entity destroyed, component removed)
  /// are skipped and counted into *skipped when non-null. Returns the
  /// number of ops applied.
  size_t Apply(World* world, size_t* skipped = nullptr);

  /// Discards buffered ops.
  void Clear();

 private:
  std::vector<std::vector<DeferredOp>> shards_;
};

/// Configuration for BindWorld.
struct WorldBindOptions {
  /// The query-phase chunk this interpreter runs in (0 for single-threaded
  /// hosts); indexes ScriptEffects / DeferredOps shard buffers.
  size_t shard = 0;
  /// Gating for the mutation builtins (see MutationPolicy).
  MutationPolicy mutations = MutationPolicy::kDirect;
  /// Destination for deferred mutations; required when mutations == kDefer.
  DeferredOps* deferred = nullptr;
  /// Optional query planner: the query builtins (where / within / count /
  /// aggregates / argmin / argmax / entities_with) attach it to their
  /// DynamicQuery, so scripts execute cost-based plans instead of the
  /// hard-coded scan. Results are identical either way; nullptr keeps the
  /// built-in paths. Must outlive the interpreter.
  QueryPlanHook* planner = nullptr;
  /// Host-owned gate for MutationPolicy::kDirectChecked; ignored under
  /// other policies. Must outlive the interpreter when set.
  DirectWriteGate* direct_gate = nullptr;
};

/// Registers World-addressing builtins on `interp`:
///   spawn() -> entity                    destroy(e)
///   is_alive(e) -> bool                  has(e, "Comp") -> bool
///   add(e, "Comp")                       remove(e, "Comp")
///   get(e, "Comp", "field") -> value     set(e, "Comp", "field", v)
///   entities_with("Comp") -> list
///   count("Comp") / sum("Comp","f") / smin / smax / avg("Comp","f")
///   where("Comp", "f", "op", v) -> list  (op: == != < <= > >=)
///   argmin/argmax("Comp","f") -> entity
///   within(center_vec3, radius) -> list  (entities with Position)
///   emit("channel", target_entity, amount)   (state-effect contribution)
///   tick() -> number                     (current simulation tick)
///
/// `effects` may be null when the host does not use scripted effects; emit()
/// then fails. Under MutationPolicy::kDefer, remove() reports whether the
/// component was present at call time (the write happens at apply).
void BindWorld(Interpreter* interp, World* world, ScriptEffects* effects,
               WorldBindOptions options);

/// Back-compat convenience: direct mutations on shard `shard`.
void BindWorld(Interpreter* interp, World* world, ScriptEffects* effects,
               size_t shard = 0);

/// Registers LiveView read builtins (views/view.h) on `interp`:
///   view_count("name") -> number        (membership size, O(1))
///   view_contains("name", e) -> bool
///   view_members("name") -> list        (canonical order)
///   view_aggregate("name") -> number    (exact fold; errors when the view
///                                        has no aggregate, and — mirroring
///                                        the DynamicQuery terminals — when
///                                        a min/max/avg view is empty;
///                                        empty sum/count views return 0)
/// All are read-only and safe during the parallel query phase — the host
/// maintains views only at its sequential point. Unknown view names are
/// script errors. `catalog` must outlive the interpreter.
void BindViews(Interpreter* interp, views::ViewCatalog* catalog);

}  // namespace gamedb::script
