#pragma once

/// \file bindings.h
/// ECS bindings: the builtins that let GSL scripts address the game state
/// database by component/field name, run declarative queries, and emit
/// state-effect contributions instead of raw writes. This is the seam where
/// the tutorial's "declarative processing" [11, 13] meets the scripting
/// layer: scripts at the kDeclarative restriction level can ONLY express
/// bulk reads through these aggregate builtins, which the engine evaluates
/// with its indexes.

#include <unordered_map>

#include "core/state_effect.h"
#include "core/world.h"
#include "script/interpreter.h"

namespace gamedb::script {

/// Named effect channels scripts contribute into; the host drains them after
/// the scripted query phase (see core/state_effect.h).
class ScriptEffects {
 public:
  explicit ScriptEffects(size_t shards) : shards_(shards) {}

  /// Creates (or returns) the named channel.
  Effect<double>& Channel(const std::string& name);
  bool HasChannel(const std::string& name) const {
    return channels_.count(name) > 0;
  }

  /// Drains one channel (no-op if it was never contributed to).
  void Drain(const std::string& name,
             const std::function<void(EntityId, double)>& apply);

  /// Discards all buffered contributions.
  void Clear();

  size_t shards() const { return shards_; }

 private:
  size_t shards_;
  std::unordered_map<std::string, std::unique_ptr<Effect<double>>> channels_;
};

/// Registers World-addressing builtins on `interp`:
///   spawn() -> entity                    destroy(e)
///   is_alive(e) -> bool                  has(e, "Comp") -> bool
///   add(e, "Comp")                       remove(e, "Comp")
///   get(e, "Comp", "field") -> value     set(e, "Comp", "field", v)
///   entities_with("Comp") -> list
///   count("Comp") / sum("Comp","f") / smin / smax / avg("Comp","f")
///   where("Comp", "f", "op", v) -> list  (op: == != < <= > >=)
///   argmin/argmax("Comp","f") -> entity
///   within(center_vec3, radius) -> list  (entities with Position)
///   emit("channel", target_entity, amount)   (state-effect contribution)
///   tick() -> number                     (current simulation tick)
///
/// `effects` may be null when the host does not use scripted effects; emit()
/// then fails. The `shard` is the query-phase chunk the interpreter runs in
/// (0 for single-threaded hosts).
void BindWorld(Interpreter* interp, World* world, ScriptEffects* effects,
               size_t shard = 0);

}  // namespace gamedb::script
