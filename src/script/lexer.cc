#include "script/lexer.h"

#include <cctype>
#include <unordered_map>

#include "common/string_util.h"

namespace gamedb::script {

namespace {

const std::unordered_map<std::string_view, TokenType> kKeywords = {
    {"let", TokenType::kLet},           {"fn", TokenType::kFn},
    {"on", TokenType::kOn},             {"if", TokenType::kIf},
    {"else", TokenType::kElse},         {"while", TokenType::kWhile},
    {"foreach", TokenType::kForeach},   {"in", TokenType::kIn},
    {"return", TokenType::kReturn},     {"break", TokenType::kBreak},
    {"continue", TokenType::kContinue}, {"true", TokenType::kTrue},
    {"false", TokenType::kFalse},       {"nil", TokenType::kNil},
    {"and", TokenType::kAnd},           {"or", TokenType::kOr},
    {"not", TokenType::kNot},
};

}  // namespace

Result<std::vector<Token>> Lex(std::string_view src) {
  std::vector<Token> out;
  size_t i = 0;
  int line = 1;
  size_t line_start = 0;  // index of the current line's first character
  // Source position of the token being lexed (captured before consuming
  // its characters, so multi-char tokens point at their first character).
  int tok_line = 1;
  int tok_col = 1;
  auto push = [&](TokenType t, std::string text = "", double num = 0.0) {
    out.push_back(Token{t, std::move(text), num, tok_line, tok_col});
  };

  while (i < src.size()) {
    char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      line_start = i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#') {  // comment to end of line
      while (i < src.size() && src[i] != '\n') ++i;
      continue;
    }
    tok_line = line;
    tok_col = static_cast<int>(i - line_start) + 1;
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < src.size() &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      size_t start = i;
      while (i < src.size() &&
             (std::isdigit(static_cast<unsigned char>(src[i])) ||
              src[i] == '.' || src[i] == 'e' || src[i] == 'E' ||
              ((src[i] == '+' || src[i] == '-') && i > start &&
               (src[i - 1] == 'e' || src[i - 1] == 'E')))) {
        ++i;
      }
      double v;
      if (!ParseDouble(src.substr(start, i - start), &v)) {
        return Status::ParseError(
            StringFormat("line %d: bad number '%s'", line,
                         std::string(src.substr(start, i - start)).c_str()));
      }
      push(TokenType::kNumber, std::string(src.substr(start, i - start)), v);
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < src.size() &&
             (std::isalnum(static_cast<unsigned char>(src[i])) ||
              src[i] == '_')) {
        ++i;
      }
      std::string_view word = src.substr(start, i - start);
      auto it = kKeywords.find(word);
      if (it != kKeywords.end()) {
        push(it->second, std::string(word));
      } else {
        push(TokenType::kIdent, std::string(word));
      }
      continue;
    }
    if (c == '"') {
      ++i;
      std::string text;
      bool closed = false;
      while (i < src.size()) {
        char d = src[i];
        if (d == '"') {
          closed = true;
          ++i;
          break;
        }
        if (d == '\n') break;  // unterminated
        if (d == '\\' && i + 1 < src.size()) {
          char e = src[i + 1];
          switch (e) {
            case 'n': text.push_back('\n'); break;
            case 't': text.push_back('\t'); break;
            case '"': text.push_back('"'); break;
            case '\\': text.push_back('\\'); break;
            default:
              return Status::ParseError(
                  StringFormat("line %d: unknown escape '\\%c'", line, e));
          }
          i += 2;
          continue;
        }
        text.push_back(d);
        ++i;
      }
      if (!closed) {
        return Status::ParseError(
            StringFormat("line %d: unterminated string", line));
      }
      push(TokenType::kString, std::move(text));
      continue;
    }
    // Operators / punctuation.
    auto two = [&](char next) {
      return i + 1 < src.size() && src[i + 1] == next;
    };
    switch (c) {
      case '(': push(TokenType::kLParen); ++i; break;
      case ')': push(TokenType::kRParen); ++i; break;
      case '{': push(TokenType::kLBrace); ++i; break;
      case '}': push(TokenType::kRBrace); ++i; break;
      case '[': push(TokenType::kLBracket); ++i; break;
      case ']': push(TokenType::kRBracket); ++i; break;
      case ',': push(TokenType::kComma); ++i; break;
      case '+': push(TokenType::kPlus); ++i; break;
      case '-': push(TokenType::kMinus); ++i; break;
      case '*': push(TokenType::kStar); ++i; break;
      case '/': push(TokenType::kSlash); ++i; break;
      case '%': push(TokenType::kPercent); ++i; break;
      case '=':
        if (two('=')) {
          push(TokenType::kEq);
          i += 2;
        } else {
          push(TokenType::kAssign);
          ++i;
        }
        break;
      case '!':
        if (two('=')) {
          push(TokenType::kNe);
          i += 2;
        } else {
          return Status::ParseError(
              StringFormat("line %d: unexpected '!' (use 'not')", line));
        }
        break;
      case '<':
        if (two('=')) {
          push(TokenType::kLe);
          i += 2;
        } else {
          push(TokenType::kLt);
          ++i;
        }
        break;
      case '>':
        if (two('=')) {
          push(TokenType::kGe);
          i += 2;
        } else {
          push(TokenType::kGt);
          ++i;
        }
        break;
      default:
        return Status::ParseError(
            StringFormat("line %d: unexpected character '%c'", line, c));
    }
  }
  tok_line = line;
  tok_col = static_cast<int>(i - line_start) + 1;
  push(TokenType::kEof);
  return out;
}

}  // namespace gamedb::script
