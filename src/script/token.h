#pragma once

/// \file token.h
/// Token vocabulary of GSL, the small data-driven scripting language that
/// stands in for the studio-internal languages the tutorial surveys.

#include <cstdint>
#include <string>

namespace gamedb::script {

enum class TokenType : uint8_t {
  // Literals / identifiers
  kNumber,
  kString,
  kIdent,
  // Keywords
  kLet,
  kFn,
  kOn,
  kIf,
  kElse,
  kWhile,
  kForeach,
  kIn,
  kReturn,
  kBreak,
  kContinue,
  kTrue,
  kFalse,
  kNil,
  kAnd,
  kOr,
  kNot,
  // Punctuation / operators
  kLParen,
  kRParen,
  kLBrace,
  kRBrace,
  kLBracket,
  kRBracket,
  kComma,
  kAssign,      // =
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kPercent,
  kEq,          // ==
  kNe,          // !=
  kLt,
  kLe,
  kGt,
  kGe,
  kEof,
};

/// Stable name for diagnostics.
const char* TokenTypeName(TokenType t);

/// One lexed token. `text` is the raw lexeme (string literals are unescaped
/// into `text`), `number` is set for kNumber. `line`/`column` are 1-based
/// source coordinates of the token's first character; the parser copies
/// them into AST nodes so every diagnostic the static verifier emits
/// (script/diagnostics.h) can point at the offending source position.
struct Token {
  TokenType type = TokenType::kEof;
  std::string text;
  double number = 0.0;
  int line = 0;
  int column = 0;
};

}  // namespace gamedb::script
