#include "script/diagnostics.h"

#include "common/string_util.h"

namespace gamedb::script {

const char* SeverityName(Severity s) {
  switch (s) {
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "?";
}

const char* DiagPassName(DiagPass p) {
  switch (p) {
    case DiagPass::kStructure:
      return "structure";
    case DiagPass::kPhase:
      return "phase";
    case DiagPass::kBindings:
      return "bindings";
    case DiagPass::kCost:
      return "cost";
  }
  return "?";
}

std::string Diagnostic::ToString() const {
  std::string out;
  if (!origin.empty()) out += origin + ":";
  if (loc.valid()) {
    out += StringFormat("%d:%d: ", loc.line, loc.col);
  } else if (!out.empty()) {
    out += " ";
  }
  out += SeverityName(severity);
  out += StringFormat(": [%s] ", DiagPassName(pass));
  out += message;
  return out;
}

void DiagnosticSink::Report(Diagnostic d) {
  if (d.severity == Severity::kError) ++errors_;
  diags_.push_back(std::move(d));
}

void DiagnosticSink::Error(DiagPass pass, SourceLoc loc, std::string message) {
  Diagnostic d;
  d.severity = Severity::kError;
  d.pass = pass;
  d.loc = loc;
  d.message = std::move(message);
  Report(std::move(d));
}

void DiagnosticSink::Warn(DiagPass pass, SourceLoc loc, std::string message) {
  Diagnostic d;
  d.severity = Severity::kWarning;
  d.pass = pass;
  d.loc = loc;
  d.message = std::move(message);
  Report(std::move(d));
}

void DiagnosticSink::SetOrigin(const std::string& origin) {
  for (Diagnostic& d : diags_) {
    if (d.origin.empty()) d.origin = origin;
  }
}

std::string DiagnosticSink::ToString() const {
  std::string out;
  for (const Diagnostic& d : diags_) {
    if (!out.empty()) out += "\n";
    out += d.ToString();
  }
  return out;
}

Status DiagnosticSink::FirstError() const {
  for (const Diagnostic& d : diags_) {
    if (d.severity != Severity::kError) continue;
    if (d.loc.valid()) {
      return Status::ParseError(StringFormat("line %d: %s", d.loc.line,
                                             d.message.c_str()));
    }
    return Status::ParseError(d.message);
  }
  return Status::OK();
}

}  // namespace gamedb::script
