#pragma once

/// \file builtins.h
/// World-independent GSL standard library: printing, math, vectors, lists
/// and deterministic randomness. ECS access lives in bindings.h.

#include "script/interpreter.h"

namespace gamedb::script {

/// Registers the core builtins on `interp`:
///   print(args...)            -> nil; appends a line to interp->output()
///   abs/floor/ceil/sqrt(x), min(a,b), max(a,b), clamp(x,lo,hi)
///   vec3(x,y,z), vx(v), vy(v), vz(v), distance(a,b), length(v)
///   len(l), push(l,v) -> l, at(l,i), set_at(l,i,v), range(n) -> [0..n)
///   random()  -> [0,1) from the interpreter's seeded RNG
///   random_int(lo,hi) -> integer in [lo,hi]
///   str(v) -> string rendering
void RegisterCoreBuiltins(Interpreter* interp);

/// Argument-checking helpers shared by builtin implementations.
Status ExpectArgs(const std::vector<Value>& args, size_t n,
                  const char* signature);
Result<double> ArgNumber(const std::vector<Value>& args, size_t i,
                         const char* signature);
Result<EntityId> ArgEntity(const std::vector<Value>& args, size_t i,
                           const char* signature);
Result<std::string> ArgString(const std::vector<Value>& args, size_t i,
                              const char* signature);
Result<Vec3> ArgVec3(const std::vector<Value>& args, size_t i,
                     const char* signature);
Result<ValueList> ArgList(const std::vector<Value>& args, size_t i,
                          const char* signature);

}  // namespace gamedb::script
