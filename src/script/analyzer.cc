#include "script/analyzer.h"

#include <unordered_map>
#include <unordered_set>

#include "common/string_util.h"

namespace gamedb::script {

const char* RestrictionName(Restriction r) {
  switch (r) {
    case Restriction::kFull:
      return "full";
    case Restriction::kNoRecursion:
      return "no-recursion";
    case Restriction::kDeclarative:
      return "declarative";
  }
  return "?";
}

namespace {

class Analyzer {
 public:
  Analyzer(const Script& script, Restriction restriction,
           const std::function<bool(const std::string&)>& is_builtin)
      : script_(script), restriction_(restriction), is_builtin_(is_builtin) {}

  Status Run(AnalysisReport* report) {
    // Statement-level checks on every body.
    for (const auto& s : script_.top_level) {
      GAMEDB_RETURN_NOT_OK(CheckStmt(*s, /*loop_depth=*/0));
    }
    for (const auto& s : script_.decls) {
      for (const auto& b : s->body) {
        GAMEDB_RETURN_NOT_OK(CheckStmt(*b, 0));
      }
    }
    // Call-graph construction and cycle detection.
    for (const auto& [name, fn] : script_.functions) {
      CollectCalls(*fn, &calls_[name]);
    }
    if (restriction_ != Restriction::kFull) {
      for (const auto& [name, fn] : script_.functions) {
        std::unordered_set<std::string> on_stack;
        GAMEDB_RETURN_NOT_OK(CheckCycles(name, &on_stack));
      }
    }
    if (report != nullptr) {
      report->stats = CountNodes(script_);
      report->max_call_depth = 0;
      for (const auto& [name, fn] : script_.functions) {
        std::unordered_set<std::string> on_stack;
        report->max_call_depth =
            std::max(report->max_call_depth, Depth(name, &on_stack));
      }
    }
    return Status::OK();
  }

 private:
  Status Err(int line, const std::string& msg) const {
    return Status::ParseError(StringFormat("line %d: %s", line, msg.c_str()));
  }

  Status CheckExpr(const Expr& e) {
    if (e.kind == ExprKind::kCall) {
      if (!script_.functions.count(e.name) && !is_builtin_(e.name)) {
        return Err(e.line, "call to undefined function '" + e.name + "'");
      }
    }
    for (const auto& a : e.args) {
      GAMEDB_RETURN_NOT_OK(CheckExpr(*a));
    }
    return Status::OK();
  }

  Status CheckStmt(const Stmt& s, int loop_depth) {
    switch (s.kind) {
      case StmtKind::kWhile:
      case StmtKind::kForeach:
        if (restriction_ == Restriction::kDeclarative) {
          return Err(s.line,
                     std::string("iteration ('") +
                         (s.kind == StmtKind::kWhile ? "while" : "foreach") +
                         "') is not allowed at the declarative restriction "
                         "level; use aggregate builtins");
        }
        ++loop_depth;
        break;
      case StmtKind::kBreak:
      case StmtKind::kContinue:
        if (loop_depth == 0) {
          return Err(s.line, s.kind == StmtKind::kBreak
                                 ? "'break' outside loop"
                                 : "'continue' outside loop");
        }
        break;
      case StmtKind::kFn:
      case StmtKind::kOn:
        return Err(s.line, "nested function declarations are not allowed");
      default:
        break;
    }
    if (s.expr) GAMEDB_RETURN_NOT_OK(CheckExpr(*s.expr));
    for (const auto& b : s.body) {
      GAMEDB_RETURN_NOT_OK(CheckStmt(*b, loop_depth));
    }
    for (const auto& b : s.else_body) {
      GAMEDB_RETURN_NOT_OK(CheckStmt(*b, loop_depth));
    }
    return Status::OK();
  }

  void CollectCallsExpr(const Expr& e, std::unordered_set<std::string>* out) {
    if (e.kind == ExprKind::kCall && script_.functions.count(e.name)) {
      out->insert(e.name);
    }
    for (const auto& a : e.args) CollectCallsExpr(*a, out);
  }
  void CollectCalls(const Stmt& s, std::unordered_set<std::string>* out) {
    if (s.expr) CollectCallsExpr(*s.expr, out);
    for (const auto& b : s.body) CollectCalls(*b, out);
    for (const auto& b : s.else_body) CollectCalls(*b, out);
  }

  Status CheckCycles(const std::string& name,
                     std::unordered_set<std::string>* on_stack) {
    if (on_stack->count(name)) {
      return Status::ParseError(
          "recursion involving '" + name + "' is not allowed at the " +
          RestrictionName(restriction_) + " restriction level");
    }
    if (verified_.count(name)) return Status::OK();
    on_stack->insert(name);
    for (const auto& callee : calls_[name]) {
      GAMEDB_RETURN_NOT_OK(CheckCycles(callee, on_stack));
    }
    on_stack->erase(name);
    verified_.insert(name);
    return Status::OK();
  }

  size_t Depth(const std::string& name,
               std::unordered_set<std::string>* on_stack) {
    if (on_stack->count(name)) return 0;  // cycle (only under kFull)
    on_stack->insert(name);
    size_t best = 0;
    for (const auto& callee : calls_[name]) {
      best = std::max(best, Depth(callee, on_stack));
    }
    on_stack->erase(name);
    return best + 1;
  }

  const Script& script_;
  Restriction restriction_;
  const std::function<bool(const std::string&)>& is_builtin_;
  std::unordered_map<std::string, std::unordered_set<std::string>> calls_;
  std::unordered_set<std::string> verified_;
};

}  // namespace

Status Analyze(const Script& script, Restriction restriction,
               const std::function<bool(const std::string&)>& is_builtin,
               AnalysisReport* report) {
  Analyzer analyzer(script, restriction, is_builtin);
  return analyzer.Run(report);
}

}  // namespace gamedb::script
