#include "script/analyzer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <string_view>
#include <unordered_map>
#include <unordered_set>

#include "common/string_util.h"
#include "core/reflect.h"
#include "planner/plan.h"

namespace gamedb::script {

const char* RestrictionName(Restriction r) {
  switch (r) {
    case Restriction::kFull:
      return "full";
    case Restriction::kNoRecursion:
      return "no-recursion";
    case Restriction::kDeclarative:
      return "declarative";
  }
  return "?";
}

const char* StrictnessName(Strictness s) {
  switch (s) {
    case Strictness::kOff:
      return "off";
    case Strictness::kWarn:
      return "warn";
    case Strictness::kStrict:
      return "strict";
  }
  return "?";
}

const char* PhaseContextName(PhaseContext p) {
  switch (p) {
    case PhaseContext::kSequential:
      return "sequential";
    case PhaseContext::kParallelDefer:
      return "parallel-defer";
    case PhaseContext::kParallelReject:
      return "parallel-reject";
  }
  return "?";
}

std::string EffectSetName(uint32_t effects) {
  if (effects == kEffectNone) return "pure";
  std::string out;
  auto add = [&](uint32_t bit, const char* tok) {
    if ((effects & bit) == 0) return;
    if (!out.empty()) out += "|";
    out += tok;
  };
  add(kEffectWorldRead, "read");
  add(kEffectViewRead, "view-read");
  add(kEffectEmit, "emit");
  add(kEffectGatedWrite, "write");
  add(kEffectSpawn, "spawn");
  add(kEffectFire, "fire");
  return out;
}

std::string AccessSummaryToString(const AccessSummary& s) {
  std::string out = "reads{";
  bool first = true;
  auto append = [&](const std::string& tok) {
    if (!first) out += ", ";
    first = false;
    out += tok;
  };
  for (const auto& [key, bits] : s.fields) {
    if (bits & kAccessRead) append(key);
  }
  if (s.unknown_read) append("*");
  out += "} writes{";
  first = true;
  for (const auto& [key, bits] : s.fields) {
    if ((bits & (kAccessWriteSelf | kAccessWriteForeign)) == 0) continue;
    std::string tok = key;
    if ((bits & kAccessWriteSelf) && (bits & kAccessWriteForeign)) {
      tok += ":self+foreign";
    } else if (bits & kAccessWriteSelf) {
      tok += ":self";
    } else {
      tok += ":foreign";
    }
    append(tok);
  }
  if (s.unknown_write) append("*");
  out += "}";
  if (s.structural_write) out += " structural";
  if (s.radius_unbounded) {
    out += " radius unbounded";
  } else {
    out += StringFormat(" radius %g", s.radius);
  }
  return out;
}

SchemaCatalog ReflectionSchema() {
  SchemaCatalog schema;
  schema.has_component = [](const std::string& comp) {
    return TypeRegistry::Global().FindByName(comp) != nullptr;
  };
  schema.has_field = [](const std::string& comp, const std::string& field) {
    const TypeInfo* info = TypeRegistry::Global().FindByName(comp);
    return info != nullptr && info->FindField(field) != nullptr;
  };
  schema.component_names = []() {
    TypeRegistry& reg = TypeRegistry::Global();
    std::vector<std::string> names;
    names.reserve(reg.size());
    for (uint32_t id = 0; id < reg.size(); ++id) {
      if (const TypeInfo* info = reg.Find(id)) names.push_back(info->name());
    }
    return names;
  };
  schema.field_names = [](const std::string& comp) {
    std::vector<std::string> names;
    if (const TypeInfo* info = TypeRegistry::Global().FindByName(comp)) {
      names.reserve(info->fields().size());
      for (const FieldInfo& f : info->fields()) names.push_back(f.name());
    }
    return names;
  };
  return schema;
}

namespace {

/// How the cost pass prices a world builtin.
enum class CostClass : uint8_t {
  kCheap,        ///< O(1) native work
  kScan,         ///< visits every row of a table (scan + predicate)
  kSpatial,      ///< spatial probe + candidate visits
  kViewConst,    ///< O(1) view read
  kViewMembers,  ///< materializes the view membership snapshot
};

constexpr int kNoArg = -1;

/// Static signature of a world/view/trigger builtin: its effect bits, its
/// arity (as enforced at runtime by ExpectArgs), which literal string args
/// name schema objects, and its cost class. Builtins absent from this table
/// (math, list ops, random, ...) are effect-free and priced as kCheap.
struct BuiltinSig {
  const char* name;
  uint32_t effects;
  int arity;  ///< -1: variadic (fire)
  const char* signature;
  int comp_arg;     ///< literal arg resolved as a component name
  int field_arg;    ///< literal arg resolved as a field of comp_arg
  int view_arg;     ///< literal arg resolved as a LiveView name
  int channel_arg;  ///< literal arg resolved as an effect channel
  int event_arg;    ///< literal arg resolved as a trigger event
  int op_arg;       ///< literal arg holding a comparison operator
  CostClass cost;
};

// Keep signature strings identical to the runtime ExpectArgs call sites in
// bindings.cc / triggers.cc — the static arity diagnostic renders the same
// text a designer would have hit at runtime.
const BuiltinSig kBuiltinSigs[] = {
    {"spawn", kEffectSpawn, 0, "spawn()", kNoArg, kNoArg, kNoArg, kNoArg,
     kNoArg, kNoArg, CostClass::kCheap},
    {"destroy", kEffectGatedWrite, 1, "destroy(e)", kNoArg, kNoArg, kNoArg,
     kNoArg, kNoArg, kNoArg, CostClass::kCheap},
    {"is_alive", kEffectWorldRead, 1, "is_alive(e)", kNoArg, kNoArg, kNoArg,
     kNoArg, kNoArg, kNoArg, CostClass::kCheap},
    {"has", kEffectWorldRead, 2, "has(e, \"Comp\")", 1, kNoArg, kNoArg, kNoArg,
     kNoArg, kNoArg, CostClass::kCheap},
    {"add", kEffectGatedWrite, 2, "add(e, \"Comp\")", 1, kNoArg, kNoArg,
     kNoArg, kNoArg, kNoArg, CostClass::kCheap},
    {"remove", kEffectGatedWrite, 2, "remove(e, \"Comp\")", 1, kNoArg, kNoArg,
     kNoArg, kNoArg, kNoArg, CostClass::kCheap},
    {"get", kEffectWorldRead, 3, "get(e, \"Comp\", \"field\")", 1, 2, kNoArg,
     kNoArg, kNoArg, kNoArg, CostClass::kCheap},
    {"set", kEffectGatedWrite, 4, "set(e, \"Comp\", \"field\", v)", 1, 2,
     kNoArg, kNoArg, kNoArg, kNoArg, CostClass::kCheap},
    {"entities_with", kEffectWorldRead, 1, "entities_with(\"Comp\")", 0,
     kNoArg, kNoArg, kNoArg, kNoArg, kNoArg, CostClass::kScan},
    {"count", kEffectWorldRead, 1, "count(\"Comp\")", 0, kNoArg, kNoArg,
     kNoArg, kNoArg, kNoArg, CostClass::kScan},
    {"sum", kEffectWorldRead, 2, "sum(\"Comp\", \"field\")", 0, 1, kNoArg,
     kNoArg, kNoArg, kNoArg, CostClass::kScan},
    {"smin", kEffectWorldRead, 2, "smin(\"Comp\", \"field\")", 0, 1, kNoArg,
     kNoArg, kNoArg, kNoArg, CostClass::kScan},
    {"smax", kEffectWorldRead, 2, "smax(\"Comp\", \"field\")", 0, 1, kNoArg,
     kNoArg, kNoArg, kNoArg, CostClass::kScan},
    {"avg", kEffectWorldRead, 2, "avg(\"Comp\", \"field\")", 0, 1, kNoArg,
     kNoArg, kNoArg, kNoArg, CostClass::kScan},
    {"argmin", kEffectWorldRead, 2, "argmin(\"Comp\", \"field\")", 0, 1,
     kNoArg, kNoArg, kNoArg, kNoArg, CostClass::kScan},
    {"argmax", kEffectWorldRead, 2, "argmax(\"Comp\", \"field\")", 0, 1,
     kNoArg, kNoArg, kNoArg, kNoArg, CostClass::kScan},
    {"where", kEffectWorldRead, 4, "where(\"Comp\", \"field\", \"op\", v)", 0,
     1, kNoArg, kNoArg, kNoArg, 2, CostClass::kScan},
    {"within", kEffectWorldRead, 2, "within(center, radius)", kNoArg, kNoArg,
     kNoArg, kNoArg, kNoArg, kNoArg, CostClass::kSpatial},
    {"emit", kEffectEmit, 3, "emit(\"channel\", target, amount)", kNoArg,
     kNoArg, kNoArg, 0, kNoArg, kNoArg, CostClass::kCheap},
    {"tick", kEffectWorldRead, 0, "tick()", kNoArg, kNoArg, kNoArg, kNoArg,
     kNoArg, kNoArg, CostClass::kCheap},
    {"view_count", kEffectViewRead, 1, "view_count(\"name\")", kNoArg, kNoArg,
     0, kNoArg, kNoArg, kNoArg, CostClass::kViewConst},
    {"view_contains", kEffectViewRead, 2, "view_contains(\"name\", e)", kNoArg,
     kNoArg, 0, kNoArg, kNoArg, kNoArg, CostClass::kViewConst},
    {"view_members", kEffectViewRead, 1, "view_members(\"name\")", kNoArg,
     kNoArg, 0, kNoArg, kNoArg, kNoArg, CostClass::kViewMembers},
    {"view_aggregate", kEffectViewRead, 1, "view_aggregate(\"name\")", kNoArg,
     kNoArg, 0, kNoArg, kNoArg, kNoArg, CostClass::kViewConst},
    {"fire", kEffectFire, -1, "fire(\"event\", args...)", kNoArg, kNoArg,
     kNoArg, kNoArg, 0, kNoArg, CostClass::kCheap},
};

const BuiltinSig* FindSig(const std::string& name) {
  for (const BuiltinSig& sig : kBuiltinSigs) {
    if (name == sig.name) return &sig;
  }
  return nullptr;
}

/// Literal string argument at `idx`, or nullptr when the argument is absent
/// or computed at runtime (only literals are statically checkable).
const std::string* LiteralStringArg(const Expr& call, size_t idx) {
  if (idx >= call.args.size()) return nullptr;
  const Expr& a = *call.args[idx];
  if (a.kind != ExprKind::kLiteral || !a.literal.IsString()) return nullptr;
  return &a.literal.AsString();
}

SourceLoc LocOf(const Expr& e) { return SourceLoc{e.line, e.col}; }
SourceLoc LocOf(const Stmt& s) { return SourceLoc{s.line, s.col}; }

bool IsCmpOpToken(const std::string& op) {
  return op == "==" || op == "!=" || op == "<" || op == "<=" || op == ">" ||
         op == ">=";
}

// ---- access-summary lattice helpers ------------------------------------

std::string_view CompOf(const std::string& key) {
  return std::string_view(key).substr(0, key.find('.'));
}
std::string_view FieldOf(const std::string& key) {
  size_t dot = key.find('.');
  return dot == std::string::npos ? std::string_view("*")
                                  : std::string_view(key).substr(dot + 1);
}

/// Do two "Comp.field" keys name overlapping storage? "Comp.*" (field
/// statically unknown) overlaps every field of Comp.
bool KeysOverlap(const std::string& a, const std::string& b) {
  if (CompOf(a) != CompOf(b)) return false;
  std::string_view fa = FieldOf(a);
  std::string_view fb = FieldOf(b);
  return fa == "*" || fb == "*" || fa == fb;
}

constexpr uint8_t kAccessWriteAny = kAccessWriteSelf | kAccessWriteForeign;

bool HasFieldWrites(const EntryFacts& e) {
  const AccessSummary& a = e.facts.access;
  if (a.unknown_write || a.structural_write) return true;
  for (const auto& [key, bits] : a.fields) {
    if (bits & kAccessWriteAny) return true;
  }
  return false;
}

/// Does this entry read or write world state at all? (The peer test for ⊤
/// writes: a destroy() conflicts even with an entry that only calls
/// is_alive(), which records no field key but carries kEffectWorldRead.)
bool TouchesWorld(const EntryFacts& e) {
  const AccessSummary& a = e.facts.access;
  return (e.facts.effects & (kEffectWorldRead | kEffectGatedWrite)) != 0 ||
         !a.fields.empty() || a.unknown_read || a.unknown_write ||
         a.structural_write;
}

// ---- did-you-mean (bindings-pass UX) -----------------------------------

/// Levenshtein edit distance, early-exiting with cap+1 once the distance
/// provably exceeds `cap` (names are short; the DP rows stay tiny).
size_t EditDistance(const std::string& a, const std::string& b, size_t cap) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n > m + cap || m > n + cap) return cap + 1;
  std::vector<size_t> row(m + 1);
  for (size_t j = 0; j <= m; ++j) row[j] = j;
  for (size_t i = 1; i <= n; ++i) {
    size_t diag = row[0];
    row[0] = i;
    size_t best = row[0];
    for (size_t j = 1; j <= m; ++j) {
      size_t sub = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      diag = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, sub});
      best = std::min(best, row[j]);
    }
    if (best > cap) return cap + 1;
  }
  return row[m];
}

/// "; did you mean 'X'?" for the closest candidate within edit distance 2
/// (ties resolve to the first candidate), or "" when nothing is close.
std::string Suggestion(const std::string& name,
                       const std::vector<std::string>& candidates) {
  constexpr size_t kMaxDistance = 2;
  const std::string* best = nullptr;
  size_t best_d = kMaxDistance + 1;
  for (const std::string& c : candidates) {
    if (c == name) continue;
    size_t d = EditDistance(name, c, kMaxDistance);
    if (d < best_d) {
      best_d = d;
      best = &c;
    }
  }
  if (best == nullptr) return "";
  return "; did you mean '" + *best + "'?";
}

class Verifier {
 public:
  Verifier(const Script& script, const VerifierOptions& options,
           DiagnosticSink* sink)
      : script_(script), options_(options), sink_(sink) {
    // ⊤ of the access lattice: what a recursion cycle (or an undefined
    // callee) is assumed to do — anything, anywhere.
    top_access_.unknown_read = true;
    top_access_.unknown_write = true;
    top_access_.radius_unbounded = true;
  }

  VerifyReport Run() {
    // --- structure ------------------------------------------------------
    for (const auto& s : script_.top_level) StructureStmt(*s, 0);
    for (const auto& d : script_.decls) {
      for (const auto& b : d->body) StructureStmt(*b, 0);
    }
    BuildCallGraph();
    if (options_.restriction != Restriction::kFull) CheckRecursion();

    // --- phase ----------------------------------------------------------
    ComputeEffects();
    for (const auto& s : script_.top_level) PhaseStmt(*s);
    for (const auto& d : script_.decls) {
      for (const auto& b : d->body) PhaseStmt(*b);
    }
    if (options_.top_level_must_be_pure) {
      for (const auto& s : script_.top_level) TopLevelPurityStmt(*s);
    }

    // --- bindings -------------------------------------------------------
    for (const auto& s : script_.top_level) BindingsStmt(*s);
    for (const auto& d : script_.decls) {
      for (const auto& b : d->body) BindingsStmt(*b);
    }

    // --- cost -----------------------------------------------------------
    VerifyReport report = CostPassAndReport();
    sink_->SetOrigin(script_.name);
    return report;
  }

 private:
  // Is `name` a call to a native builtin (not shadowed by a script fn)?
  bool ResolvesToBuiltin(const std::string& name) const {
    if (script_.functions.count(name)) return false;
    return !options_.is_builtin || options_.is_builtin(name);
  }

  const BuiltinSig* SigFor(const Expr& call) const {
    if (call.kind != ExprKind::kCall) return nullptr;
    if (!ResolvesToBuiltin(call.name)) return nullptr;
    return FindSig(call.name);
  }

  // ---- structure pass --------------------------------------------------

  void StructureExpr(const Expr& e) {
    if (e.kind == ExprKind::kCall) {
      if (!script_.functions.count(e.name) &&
          (!options_.is_builtin || !options_.is_builtin(e.name))) {
        sink_->Error(DiagPass::kStructure, LocOf(e),
                     "call to undefined function '" + e.name + "'");
      }
    }
    for (const auto& a : e.args) StructureExpr(*a);
  }

  void StructureStmt(const Stmt& s, int loop_depth) {
    switch (s.kind) {
      case StmtKind::kWhile:
      case StmtKind::kForeach:
        if (options_.restriction == Restriction::kDeclarative) {
          sink_->Error(
              DiagPass::kStructure, LocOf(s),
              std::string("iteration ('") +
                  (s.kind == StmtKind::kWhile ? "while" : "foreach") +
                  "') is not allowed at the declarative restriction level; "
                  "use aggregate builtins");
        }
        ++loop_depth;
        break;
      case StmtKind::kBreak:
      case StmtKind::kContinue:
        if (loop_depth == 0) {
          sink_->Error(DiagPass::kStructure, LocOf(s),
                       s.kind == StmtKind::kBreak ? "'break' outside loop"
                                                  : "'continue' outside loop");
        }
        break;
      case StmtKind::kFn:
      case StmtKind::kOn:
        sink_->Error(DiagPass::kStructure, LocOf(s),
                     "nested function declarations are not allowed");
        break;
      default:
        break;
    }
    if (s.expr) StructureExpr(*s.expr);
    for (const auto& b : s.body) StructureStmt(*b, loop_depth);
    for (const auto& b : s.else_body) StructureStmt(*b, loop_depth);
  }

  // ---- call graph ------------------------------------------------------

  struct CallSite {
    std::string callee;
    SourceLoc loc;
  };

  void CollectCallsExpr(const Expr& e, std::vector<CallSite>* out) {
    if (e.kind == ExprKind::kCall && script_.functions.count(e.name)) {
      out->push_back(CallSite{e.name, LocOf(e)});
    }
    for (const auto& a : e.args) CollectCallsExpr(*a, out);
  }
  void CollectCalls(const Stmt& s, std::vector<CallSite>* out) {
    if (s.expr) CollectCallsExpr(*s.expr, out);
    for (const auto& b : s.body) CollectCalls(*b, out);
    for (const auto& b : s.else_body) CollectCalls(*b, out);
  }

  void BuildCallGraph() {
    for (const auto& d : script_.decls) {
      if (d->kind != StmtKind::kFn) continue;
      std::vector<CallSite>& sites = calls_[d->name];
      for (const auto& b : d->body) CollectCalls(*b, &sites);
    }
  }

  // Recursion check in declaration order; the diagnostic is anchored at the
  // call site that closes the cycle, so the designer sees *where* the
  // recursive call happens, not just that one exists.
  void CheckRecursion() {
    std::unordered_set<std::string> verified;
    for (const auto& d : script_.decls) {
      if (d->kind != StmtKind::kFn) continue;
      std::unordered_set<std::string> on_stack;
      RecursionDfs(d->name, &on_stack, &verified);
    }
  }

  void RecursionDfs(const std::string& name,
                    std::unordered_set<std::string>* on_stack,
                    std::unordered_set<std::string>* verified) {
    if (verified->count(name)) return;
    on_stack->insert(name);
    auto it = calls_.find(name);
    if (it != calls_.end()) {
      for (const CallSite& site : it->second) {
        if (on_stack->count(site.callee)) {
          sink_->Error(DiagPass::kStructure, site.loc,
                       "recursion involving '" + site.callee +
                           "' is not allowed at the " +
                           RestrictionName(options_.restriction) +
                           " restriction level");
          continue;  // report, but don't descend into the cycle
        }
        RecursionDfs(site.callee, on_stack, verified);
      }
    }
    on_stack->erase(name);
    verified->insert(name);
  }

  // ---- phase pass ------------------------------------------------------

  uint32_t DirectEffects(const std::string& fn_name) {
    uint32_t effects = 0;
    const Stmt* decl = nullptr;
    for (const auto& d : script_.decls) {
      if (d->kind == StmtKind::kFn && d->name == fn_name) {
        decl = d.get();
        break;
      }
    }
    if (decl == nullptr) return 0;
    for (const auto& b : decl->body) DirectEffectsStmt(*b, &effects);
    return effects;
  }

  void DirectEffectsExpr(const Expr& e, uint32_t* effects) {
    if (const BuiltinSig* sig = SigFor(e)) *effects |= sig->effects;
    for (const auto& a : e.args) DirectEffectsExpr(*a, effects);
  }
  void DirectEffectsStmt(const Stmt& s, uint32_t* effects) {
    if (s.expr) DirectEffectsExpr(*s.expr, effects);
    for (const auto& b : s.body) DirectEffectsStmt(*b, effects);
    for (const auto& b : s.else_body) DirectEffectsStmt(*b, effects);
  }

  // Transitive effects over the call graph by fixpoint iteration (the
  // graph may contain cycles under Restriction::kFull; effects are a small
  // monotone lattice, so this converges in at most |functions| rounds).
  void ComputeEffects() {
    for (const auto& [name, fn] : script_.functions) {
      (void)fn;
      effects_[name] = DirectEffects(name);
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (auto& [name, eff] : effects_) {
        uint32_t merged = eff;
        for (const CallSite& site : calls_[name]) {
          merged |= effects_[site.callee];
        }
        if (merged != eff) {
          eff = merged;
          changed = true;
        }
      }
    }
  }

  uint32_t TransitiveEffects(const std::string& fn_name) {
    auto it = effects_.find(fn_name);
    return it == effects_.end() ? 0 : it->second;
  }

  // Checks one builtin call site against the execution phase. Messages
  // mirror the runtime rejections in bindings.cc word for word — the whole
  // point is that the designer reads the same explanation at load time.
  void PhaseCheckSite(const Expr& call, const BuiltinSig& sig) {
    if (options_.phase == PhaseContext::kSequential) return;
    if (sig.effects & kEffectSpawn) {
      sink_->Error(DiagPass::kPhase, LocOf(call),
                   "spawn() is not available during the parallel query phase "
                   "(entity ids are allocated in the apply phase); spawn from "
                   "the host or a trigger handler instead");
      return;
    }
    if (options_.phase == PhaseContext::kParallelReject &&
        (sig.effects & kEffectGatedWrite)) {
      sink_->Error(DiagPass::kPhase, LocOf(call),
                   call.name +
                       "() mutates the world; the scripted query phase is "
                       "read-only — emit() an effect and apply it from the "
                       "host instead");
    }
  }

  void PhaseExpr(const Expr& e) {
    if (const BuiltinSig* sig = SigFor(e)) PhaseCheckSite(e, *sig);
    for (const auto& a : e.args) PhaseExpr(*a);
  }
  void PhaseStmt(const Stmt& s) {
    if (s.expr) PhaseExpr(*s.expr);
    for (const auto& b : s.body) PhaseStmt(*b);
    for (const auto& b : s.else_body) PhaseStmt(*b);
  }

  // Top-level purity: the host runs the top level once per shard, so any
  // effect there would be applied shard_count times. Direct offense sites
  // are flagged by PhaseExpr already when the phase bans them; here we flag
  // *all* impure effects, including calls into impure functions.
  static constexpr uint32_t kImpure =
      kEffectEmit | kEffectGatedWrite | kEffectSpawn | kEffectFire;

  void TopLevelPurityExpr(const Expr& e) {
    if (e.kind == ExprKind::kCall) {
      if (const BuiltinSig* sig = FindSig(e.name);
          sig != nullptr && ResolvesToBuiltin(e.name) &&
          (sig->effects & kImpure)) {
        sink_->Error(DiagPass::kPhase, LocOf(e),
                     "script top level must not mutate the world or emit "
                     "effects (it runs once per shard); do it from the host "
                     "or inside the tick function");
      } else if (script_.functions.count(e.name)) {
        uint32_t eff = TransitiveEffects(e.name) & kImpure;
        if (eff != 0) {
          sink_->Error(
              DiagPass::kPhase, LocOf(e),
              "script top level must not mutate the world or emit effects "
              "(it runs once per shard); '" +
                  e.name + "' has effects [" + EffectSetName(eff) +
                  "] — do it from the host or inside the tick function");
        }
      }
    }
    for (const auto& a : e.args) TopLevelPurityExpr(*a);
  }
  void TopLevelPurityStmt(const Stmt& s) {
    if (s.expr) TopLevelPurityExpr(*s.expr);
    for (const auto& b : s.body) TopLevelPurityStmt(*b);
    for (const auto& b : s.else_body) TopLevelPurityStmt(*b);
  }

  // ---- access-summary pass ---------------------------------------------
  //
  // Field-granular dataflow: per function, the set of "Comp.field" keys it
  // may read, the keys it may write (with *which parameters* the write can
  // land on — substituted through call sites, so a helper that only ever
  // receives the entry's own entity still yields a self write), structural
  // membership changes, ⊤ flags for statically unresolvable access, and
  // the spatial footprint. Memoized DFS over the call graph; a back edge
  // (recursion) returns ⊤, poisoning every function on the cycle —
  // conservative and convergent.

  struct WriteTarget {
    uint32_t params = 0;   ///< bitmask: the write may land on param i
    bool foreign = false;  ///< the write may land on a non-parameter entity
  };
  struct FnAccess {
    std::set<std::string> reads;
    std::map<std::string, WriteTarget> writes;
    bool unknown_read = false;
    bool unknown_write = false;
    bool structural = false;
    double radius = 0.0;
    bool radius_unbounded = false;
  };
  /// Parameter name -> index, for parameters never rebound in the body.
  using ParamMap = std::unordered_map<std::string, uint32_t>;

  const Stmt* FindDecl(const std::string& name) const {
    for (const auto& d : script_.decls) {
      if (d->kind == StmtKind::kFn && d->name == name) return d.get();
    }
    return nullptr;
  }

  void CollectRebinds(const std::vector<std::unique_ptr<Stmt>>& body,
                      ParamMap* params) const {
    for (const auto& s : body) {
      if (s->kind == StmtKind::kLet || s->kind == StmtKind::kAssign ||
          s->kind == StmtKind::kForeach) {
        // Flow-insensitive taint: a name rebound *anywhere* stops counting
        // as the incoming argument (a write through it may hit any entity).
        params->erase(s->name);
      }
      CollectRebinds(s->body, params);
      CollectRebinds(s->else_body, params);
    }
  }

  ParamMap UntaintedParams(const Stmt& decl) const {
    ParamMap params;
    for (size_t i = 0; i < decl.params.size() && i < 32; ++i) {
      params.emplace(decl.params[i], static_cast<uint32_t>(i));
    }
    CollectRebinds(decl.body, &params);
    return params;
  }

  /// Which untainted parameter `call`'s argument `arg_idx` names, or -1.
  int ParamIndexOf(const Expr& call, size_t arg_idx,
                   const ParamMap& params) const {
    if (arg_idx >= call.args.size()) return -1;
    const Expr& a = *call.args[arg_idx];
    if (a.kind != ExprKind::kVar) return -1;
    auto it = params.find(a.name);
    return it == params.end() ? -1 : static_cast<int>(it->second);
  }

  /// Records a write of `key` targeted at the entity expression in arg 0.
  void AddWrite(FnAccess* acc, const std::string& key, const Expr& call,
                const ParamMap& params) const {
    WriteTarget& t = acc->writes[key];
    int pi = ParamIndexOf(call, 0, params);
    if (pi >= 0) {
      t.params |= 1u << static_cast<uint32_t>(pi);
    } else {
      t.foreign = true;
    }
  }

  void AccessBuiltinSite(const Expr& call, const BuiltinSig& sig,
                         const ParamMap& params, FnAccess* acc) const {
    const std::string& n = call.name;
    if (n == "destroy") {
      // Removes the entity's row from *every* table: a ⊤ structural write.
      acc->structural = true;
      acc->unknown_write = true;
      return;
    }
    if (n == "within") {
      acc->reads.insert("Position.value");
      const Expr* r = call.args.size() > 1 ? call.args[1].get() : nullptr;
      if (r != nullptr && r->kind == ExprKind::kLiteral &&
          r->literal.IsNumber()) {
        acc->radius = std::max(acc->radius, r->literal.AsNumber());
      } else {
        acc->radius_unbounded = true;  // data-dependent footprint
      }
      return;
    }
    if (sig.comp_arg < 0) return;  // no table named (emit/fire/tick/views…)
    const bool is_write = (sig.effects & kEffectGatedWrite) != 0;
    const bool is_structural = n == "add" || n == "remove";
    const std::string* comp =
        LiteralStringArg(call, static_cast<size_t>(sig.comp_arg));
    if (comp == nullptr) {
      // Computed component name: ⊤ for this access direction.
      if (is_write) {
        acc->unknown_write = true;
        acc->structural |= is_structural;
      } else {
        acc->unknown_read = true;
      }
      return;
    }
    std::string key;
    if (sig.field_arg >= 0) {
      const std::string* field =
          LiteralStringArg(call, static_cast<size_t>(sig.field_arg));
      key = *comp + "." + (field != nullptr ? *field : "*");
    } else {
      key = *comp + ".*";
    }
    if (is_write) {
      acc->structural |= is_structural;
      AddWrite(acc, key, call, params);
    } else {
      acc->reads.insert(key);
    }
  }

  /// Substitutes a callee's summary into the caller at one call site:
  /// reads and flags merge unchanged; a write that may land on callee
  /// param j becomes a write on whatever the caller passes as argument j —
  /// one of the caller's own untainted params, or foreign.
  void MergeCall(const Expr& call, const FnAccess& callee,
                 const ParamMap& params, FnAccess* acc) const {
    acc->reads.insert(callee.reads.begin(), callee.reads.end());
    acc->unknown_read |= callee.unknown_read;
    acc->unknown_write |= callee.unknown_write;
    acc->structural |= callee.structural;
    acc->radius = std::max(acc->radius, callee.radius);
    acc->radius_unbounded |= callee.radius_unbounded;
    for (const auto& [key, target] : callee.writes) {
      WriteTarget& mine = acc->writes[key];
      mine.foreign |= target.foreign;
      for (uint32_t j = 0; j < 32; ++j) {
        if ((target.params & (1u << j)) == 0) continue;
        int pi = ParamIndexOf(call, j, params);
        if (pi >= 0) {
          mine.params |= 1u << static_cast<uint32_t>(pi);
        } else {
          mine.foreign = true;
        }
      }
    }
  }

  void AccessExpr(const Expr& e, const ParamMap& params, FnAccess* acc) {
    for (const auto& a : e.args) AccessExpr(*a, params, acc);
    if (e.kind != ExprKind::kCall) return;
    if (const BuiltinSig* sig = SigFor(e)) {
      AccessBuiltinSite(e, *sig, params, acc);
    } else if (script_.functions.count(e.name)) {
      MergeCall(e, FnAccessOf(e.name), params, acc);
    }
  }
  void AccessStmt(const Stmt& s, const ParamMap& params, FnAccess* acc) {
    if (s.expr) AccessExpr(*s.expr, params, acc);
    for (const auto& b : s.body) AccessStmt(*b, params, acc);
    for (const auto& b : s.else_body) AccessStmt(*b, params, acc);
  }

  FnAccess BodyAccess(const std::vector<std::unique_ptr<Stmt>>& body,
                      const ParamMap& params) {
    FnAccess acc;
    for (const auto& s : body) AccessStmt(*s, params, &acc);
    return acc;
  }

  const FnAccess& FnAccessOf(const std::string& name) {
    auto it = fn_access_.find(name);
    if (it != fn_access_.end()) return it->second;
    if (access_stack_.count(name)) return top_access_;  // recursion -> ⊤
    const Stmt* decl = FindDecl(name);
    if (decl == nullptr) return top_access_;  // undefined (structure error)
    access_stack_.insert(name);
    ParamMap params = UntaintedParams(*decl);
    FnAccess acc = BodyAccess(decl->body, params);
    access_stack_.erase(name);
    return fn_access_.emplace(name, std::move(acc)).first->second;
  }

  /// Collapses parameter-indexed write targets to the entry-point view:
  /// the host invokes an entry with a single argument (the ticked entity),
  /// so a write on param 0 is self and everything else is foreign.
  AccessSummary Flatten(const FnAccess& acc) const {
    AccessSummary s;
    s.unknown_read = acc.unknown_read;
    s.unknown_write = acc.unknown_write;
    s.structural_write = acc.structural;
    s.radius = acc.radius;
    s.radius_unbounded = acc.radius_unbounded;
    for (const std::string& key : acc.reads) s.fields[key] |= kAccessRead;
    for (const auto& [key, target] : acc.writes) {
      uint8_t bits = 0;
      if (target.params & 1u) bits |= kAccessWriteSelf;
      if (target.foreign || (target.params & ~1u) != 0) {
        bits |= kAccessWriteForeign;
      }
      if (bits == 0) bits = kAccessWriteForeign;  // defensive
      s.fields[key] |= bits;
    }
    return s;
  }

  // ---- bindings pass ---------------------------------------------------

  std::string SuggestName(
      const std::function<std::vector<std::string>()>& enumerate,
      const std::string& name) const {
    if (!enumerate) return "";
    return Suggestion(name, enumerate());
  }

  void BindingsCheckSite(const Expr& call, const BuiltinSig& sig) {
    // Arity first (mirrors runtime ExpectArgs / the fire() check).
    if (sig.arity >= 0) {
      if (call.args.size() != static_cast<size_t>(sig.arity)) {
        sink_->Error(DiagPass::kBindings, LocOf(call),
                     StringFormat("expected %zu args: %s",
                                  static_cast<size_t>(sig.arity),
                                  sig.signature));
        return;  // positional checks below would mis-index
      }
    } else if (call.args.empty()) {
      sink_->Error(DiagPass::kBindings, LocOf(call),
                   std::string(sig.signature) + " requires an event name");
      return;
    }

    const std::string* comp =
        sig.comp_arg >= 0
            ? LiteralStringArg(call, static_cast<size_t>(sig.comp_arg))
            : nullptr;
    if (comp != nullptr && options_.schema.has_component) {
      if (!options_.schema.has_component(*comp)) {
        sink_->Error(DiagPass::kBindings,
                     LocOf(*call.args[static_cast<size_t>(sig.comp_arg)]),
                     "unknown component '" + *comp + "'" +
                         SuggestName(options_.schema.component_names, *comp));
        comp = nullptr;  // field check below would be noise
      }
    }
    if (comp != nullptr && sig.field_arg >= 0 && options_.schema.has_field) {
      if (const std::string* field =
              LiteralStringArg(call, static_cast<size_t>(sig.field_arg))) {
        if (!options_.schema.has_field(*comp, *field)) {
          std::string hint =
              options_.schema.field_names
                  ? Suggestion(*field, options_.schema.field_names(*comp))
                  : "";
          sink_->Error(DiagPass::kBindings,
                       LocOf(*call.args[static_cast<size_t>(sig.field_arg)]),
                       "component '" + *comp + "' has no field '" + *field +
                           "'" + hint);
        }
      }
    }
    if (sig.view_arg >= 0 && options_.schema.has_view) {
      if (const std::string* view =
              LiteralStringArg(call, static_cast<size_t>(sig.view_arg))) {
        if (!options_.schema.has_view(*view)) {
          sink_->Error(DiagPass::kBindings,
                       LocOf(*call.args[static_cast<size_t>(sig.view_arg)]),
                       call.name + ": no view named '" + *view + "'" +
                           SuggestName(options_.schema.view_names, *view));
        }
      }
    }
    if (sig.channel_arg >= 0 && options_.schema.has_channel) {
      if (const std::string* channel = LiteralStringArg(
              call, static_cast<size_t>(sig.channel_arg))) {
        if (!options_.schema.has_channel(*channel)) {
          sink_->Warn(
              DiagPass::kBindings,
              LocOf(*call.args[static_cast<size_t>(sig.channel_arg)]),
              "emit() into unwired channel '" + *channel +
                  "'; contributions to it are buffered but never drained" +
                  SuggestName(options_.schema.channel_names, *channel));
        }
      }
    }
    if (sig.event_arg >= 0 && options_.schema.has_event) {
      if (const std::string* event =
              LiteralStringArg(call, static_cast<size_t>(sig.event_arg))) {
        if (!options_.schema.has_event(*event)) {
          sink_->Warn(DiagPass::kBindings,
                      LocOf(*call.args[static_cast<size_t>(sig.event_arg)]),
                      "fire(\"" + *event +
                          "\") has no handler; the event will be dropped");
        }
      }
    }
    if (sig.op_arg >= 0) {
      if (const std::string* op =
              LiteralStringArg(call, static_cast<size_t>(sig.op_arg))) {
        if (!IsCmpOpToken(*op)) {
          sink_->Error(DiagPass::kBindings,
                       LocOf(*call.args[static_cast<size_t>(sig.op_arg)]),
                       "unknown comparison operator '" + *op + "'");
        }
      }
    }
  }

  void BindingsExpr(const Expr& e) {
    if (const BuiltinSig* sig = SigFor(e)) BindingsCheckSite(e, *sig);
    for (const auto& a : e.args) BindingsExpr(*a);
  }
  void BindingsStmt(const Stmt& s) {
    if (s.expr) BindingsExpr(*s.expr);
    for (const auto& b : s.body) BindingsStmt(*b);
    for (const auto& b : s.else_body) BindingsStmt(*b);
  }

  // ---- cost pass -------------------------------------------------------

  double ScanCost() const {
    return options_.cost.assumed_rows * (constants_.scan_row +
                                         constants_.predicate);
  }

  double BuiltinCost(const BuiltinSig& sig) const {
    switch (sig.cost) {
      case CostClass::kCheap:
        return options_.cost.builtin_call;
      case CostClass::kScan:
        return ScanCost();
      case CostClass::kSpatial:
        return constants_.spatial_probe +
               options_.cost.assumed_rows * constants_.spatial_candidate;
      case CostClass::kViewConst:
        return options_.cost.builtin_call;
      case CostClass::kViewMembers:
        return options_.cost.builtin_call +
               options_.cost.assumed_view_members * constants_.scan_row;
    }
    return options_.cost.builtin_call;
  }

  // Worst-case iteration count of a foreach over `iterable`.
  double TripCount(const Expr& iterable) const {
    if (iterable.kind == ExprKind::kList) {
      return static_cast<double>(iterable.args.size());
    }
    if (iterable.kind == ExprKind::kCall && ResolvesToBuiltin(iterable.name)) {
      const std::string& n = iterable.name;
      if (n == "entities_with" || n == "where" || n == "within") {
        return options_.cost.assumed_rows;
      }
      if (n == "view_members") return options_.cost.assumed_view_members;
      if (n == "range" && iterable.args.size() == 1 &&
          iterable.args[0]->kind == ExprKind::kLiteral &&
          iterable.args[0]->literal.IsNumber()) {
        return std::max(0.0, iterable.args[0]->literal.AsNumber());
      }
    }
    return options_.cost.assumed_loop_iterations;
  }

  double ExprCost(const Expr& e, std::unordered_set<std::string>* on_stack) {
    double cost = options_.cost.ast_node;
    for (const auto& a : e.args) cost += ExprCost(*a, on_stack);
    if (e.kind == ExprKind::kCall) {
      if (const BuiltinSig* sig = SigFor(e)) {
        cost += BuiltinCost(*sig);
      } else if (script_.functions.count(e.name)) {
        cost += FunctionCost(e.name, on_stack);
      } else if (ResolvesToBuiltin(e.name)) {
        cost += options_.cost.builtin_call;  // math/list/etc builtin
      }
    }
    return cost;
  }

  double BodyCost(const std::vector<std::unique_ptr<Stmt>>& body,
                  std::unordered_set<std::string>* on_stack) {
    double cost = 0;
    for (const auto& s : body) cost += StmtCost(*s, on_stack);
    return cost;
  }

  double StmtCost(const Stmt& s, std::unordered_set<std::string>* on_stack) {
    double cost = options_.cost.ast_node;
    switch (s.kind) {
      case StmtKind::kIf: {
        if (s.expr) cost += ExprCost(*s.expr, on_stack);
        double then_cost = BodyCost(s.body, on_stack);
        double else_cost = BodyCost(s.else_body, on_stack);
        cost += std::max(then_cost, else_cost);
        break;
      }
      case StmtKind::kWhile: {
        double per_iter = (s.expr ? ExprCost(*s.expr, on_stack) : 0) +
                          BodyCost(s.body, on_stack);
        cost += options_.cost.assumed_loop_iterations * per_iter;
        break;
      }
      case StmtKind::kForeach: {
        double trips = s.expr ? TripCount(*s.expr) : 0;
        if (s.expr) cost += ExprCost(*s.expr, on_stack);
        cost += trips * (options_.cost.ast_node + BodyCost(s.body, on_stack));
        break;
      }
      default:
        if (s.expr) cost += ExprCost(*s.expr, on_stack);
        cost += BodyCost(s.body, on_stack);
        cost += BodyCost(s.else_body, on_stack);
        break;
    }
    return cost;
  }

  double FunctionCost(const std::string& name,
                      std::unordered_set<std::string>* on_stack) {
    auto it = fn_cost_.find(name);
    if (it != fn_cost_.end()) return it->second;
    if (on_stack->count(name)) {
      // Recursion (only reachable under Restriction::kFull): no static
      // bound exists.
      return std::numeric_limits<double>::infinity();
    }
    const Stmt* decl = nullptr;
    for (const auto& d : script_.decls) {
      if (d->kind == StmtKind::kFn && d->name == name) {
        decl = d.get();
        break;
      }
    }
    if (decl == nullptr) return 0;
    on_stack->insert(name);
    double cost = BodyCost(decl->body, on_stack);
    on_stack->erase(name);
    // Only memoize cycle-free results: a cost computed while the cycle head
    // was on the stack would under-report the recursive branch.
    if (std::isfinite(cost)) fn_cost_[name] = cost;
    return cost;
  }

  size_t Depth(const std::string& name,
               std::unordered_set<std::string>* on_stack) {
    if (on_stack->count(name)) return 0;  // cycle (only under kFull)
    on_stack->insert(name);
    size_t best = 0;
    for (const CallSite& site : calls_[name]) {
      best = std::max(best, Depth(site.callee, on_stack));
    }
    on_stack->erase(name);
    return best + 1;
  }

  void AddEntry(VerifyReport* report, std::string name, bool is_handler,
                SourceLoc loc, uint32_t effects, double cost,
                AccessSummary access) {
    EntryFacts entry;
    entry.name = std::move(name);
    entry.is_handler = is_handler;
    entry.loc = loc;
    entry.facts.effects = effects;
    entry.facts.cost = std::isfinite(cost) ? cost : 0;
    entry.facts.cost_unbounded = !std::isfinite(cost);
    entry.facts.access = std::move(access);
    report->effects |= effects;
    if (entry.facts.cost_unbounded) {
      if (options_.cost_budget > 0) {
        sink_->Error(
            DiagPass::kCost, loc,
            "'" + entry.name +
                "' is recursive; its worst-case cost is statically unbounded "
                "and cannot meet the cost budget of " +
                StringFormat("%.0f", options_.cost_budget) + " units");
      }
    } else {
      if (cost > report->max_entry_cost) {
        report->max_entry_cost = cost;
        report->max_entry_name = entry.name;
      }
      if (options_.cost_budget > 0 && cost > options_.cost_budget) {
        sink_->Error(
            DiagPass::kCost, loc,
            "'" + entry.name + "' has a worst-case cost of " +
                StringFormat("%.0f", cost) +
                " units per invocation, over the budget of " +
                StringFormat("%.0f", options_.cost_budget) + " units");
      }
    }
    report->entries.push_back(std::move(entry));
  }

  VerifyReport CostPassAndReport() {
    if (options_.cost.constants != nullptr) {
      constants_ = *options_.cost.constants;
    }
    VerifyReport report;
    report.stats = CountNodes(script_);
    for (const auto& [name, fn] : script_.functions) {
      (void)fn;
      std::unordered_set<std::string> on_stack;
      report.max_call_depth = std::max(report.max_call_depth,
                                       Depth(name, &on_stack));
    }

    if (!script_.top_level.empty()) {
      uint32_t eff = 0;
      for (const auto& s : script_.top_level) DirectEffectsStmt(*s, &eff);
      std::vector<CallSite> sites;
      for (const auto& s : script_.top_level) CollectCalls(*s, &sites);
      for (const CallSite& site : sites) eff |= TransitiveEffects(site.callee);
      std::unordered_set<std::string> on_stack;
      double cost = 0;
      for (const auto& s : script_.top_level) cost += StmtCost(*s, &on_stack);
      // The top level has no parameters, so every write it reaches is
      // foreign by construction.
      AccessSummary access = Flatten(BodyAccess(script_.top_level, ParamMap{}));
      AddEntry(&report, "<top level>", /*is_handler=*/false,
               LocOf(*script_.top_level.front()), eff, cost,
               std::move(access));
    }
    for (const auto& d : script_.decls) {
      if (d->kind != StmtKind::kFn && d->kind != StmtKind::kOn) continue;
      bool is_handler = d->kind == StmtKind::kOn;
      std::string name = is_handler ? "on " + d->name : d->name;
      uint32_t eff;
      double cost;
      AccessSummary access;
      if (is_handler) {
        eff = 0;
        for (const auto& b : d->body) DirectEffectsStmt(*b, &eff);
        std::vector<CallSite> sites;
        for (const auto& b : d->body) CollectCalls(*b, &sites);
        for (const CallSite& site : sites) {
          eff |= TransitiveEffects(site.callee);
        }
        std::unordered_set<std::string> on_stack;
        cost = 0;
        for (const auto& b : d->body) cost += StmtCost(*b, &on_stack);
        access = Flatten(BodyAccess(d->body, UntaintedParams(*d)));
      } else {
        eff = TransitiveEffects(d->name);
        std::unordered_set<std::string> on_stack;
        cost = FunctionCost(d->name, &on_stack);
        access = Flatten(FnAccessOf(d->name));
      }
      AddEntry(&report, std::move(name), is_handler, LocOf(*d), eff, cost,
               std::move(access));
    }
    // Pack-level conflict graph: every unordered entry pair, tested with
    // the public conflict rule (deterministic (a, b) order).
    for (size_t i = 0; i < report.entries.size(); ++i) {
      for (size_t j = i + 1; j < report.entries.size(); ++j) {
        std::string reason;
        if (AccessConflicts(report.entries[i], report.entries[j], &reason)) {
          report.conflicts.push_back(ConflictEdge{i, j, std::move(reason)});
        }
      }
    }
    return report;
  }

  const Script& script_;
  const VerifierOptions& options_;
  DiagnosticSink* sink_;
  planner::CostConstants constants_;
  std::unordered_map<std::string, std::vector<CallSite>> calls_;
  std::unordered_map<std::string, uint32_t> effects_;
  std::unordered_map<std::string, double> fn_cost_;
  std::unordered_map<std::string, FnAccess> fn_access_;
  std::unordered_set<std::string> access_stack_;
  FnAccess top_access_;
};

}  // namespace

bool AccessConflicts(const EntryFacts& a, const EntryFacts& b,
                     std::string* reason) {
  auto conflict = [reason](std::string why) {
    if (reason != nullptr) *reason = std::move(why);
    return true;
  };
  const uint32_t both = a.facts.effects | b.facts.effects;
  if (both & kEffectSpawn) {
    return conflict("spawn() allocates entity ids");
  }
  if (both & kEffectFire) {
    return conflict("fire() cascades into trigger handlers");
  }
  const AccessSummary& aa = a.facts.access;
  const AccessSummary& ba = b.facts.access;
  if (aa.unknown_write && TouchesWorld(b)) {
    return conflict("'" + a.name + "' has statically unknown writes");
  }
  if (ba.unknown_write && TouchesWorld(a)) {
    return conflict("'" + b.name + "' has statically unknown writes");
  }
  if (aa.unknown_read && HasFieldWrites(b)) {
    return conflict("'" + a.name + "' has statically unknown reads");
  }
  if (ba.unknown_read && HasFieldWrites(a)) {
    return conflict("'" + b.name + "' has statically unknown reads");
  }
  for (const auto& [ka, bits_a] : aa.fields) {
    for (const auto& [kb, bits_b] : ba.fields) {
      if (!KeysOverlap(ka, kb)) continue;
      const std::string where = ka == kb ? ka : ka + " vs " + kb;
      if ((bits_a & kAccessWriteAny) && (bits_b & kAccessWriteAny)) {
        return conflict("write/write overlap on " + where);
      }
      if ((bits_a & kAccessWriteAny) && (bits_b & kAccessRead)) {
        return conflict("write/read overlap on " + where);
      }
      if ((bits_a & kAccessRead) && (bits_b & kAccessWriteAny)) {
        return conflict("read/write overlap on " + where);
      }
    }
  }
  return false;
}

bool DirectWriteEligible(const EntryFacts& entry, std::string* reason) {
  auto no = [reason](std::string why) {
    if (reason != nullptr) *reason = std::move(why);
    return false;
  };
  const AccessSummary& a = entry.facts.access;
  if (entry.facts.effects & kEffectSpawn) return no("spawns entities");
  if (entry.facts.effects & kEffectFire) {
    return no("fires trigger events (handler effects run mid-phase)");
  }
  if (a.structural_write) {
    return no("changes table membership (add/remove/destroy)");
  }
  if (a.unknown_write) return no("writes a statically unknown table/field");
  bool writes = false;
  for (const auto& [key, bits] : a.fields) {
    if (bits & kAccessWriteAny) {
      writes = true;
      break;
    }
  }
  // Read-only entries never record a mutation, so there is nothing an
  // in-place fast path could reorder.
  if (!writes) return true;
  if (a.unknown_read) {
    return no("writes fields while reading a statically unknown table");
  }
  if (entry.facts.effects & kEffectEmit) {
    // kDefer drains effect channels *before* replaying deferred writes; an
    // in-place write would land before the drain and flip that order.
    return no("emits effects while writing fields (channel applies would "
              "observe mid-tick writes)");
  }
  for (const auto& [key, bits] : a.fields) {
    if ((bits & kAccessWriteForeign) != 0) {
      return no("writes " + key + " on entities other than the ticked "
                "entity");
    }
  }
  for (const auto& [kw, bits_w] : a.fields) {
    if ((bits_w & kAccessWriteAny) == 0) continue;
    for (const auto& [kr, bits_r] : a.fields) {
      if ((bits_r & kAccessRead) == 0) continue;
      if (KeysOverlap(kw, kr)) {
        const std::string where = kw == kr ? kw : kw + " vs " + kr;
        return no("writes overlap reads on " + where +
                  " (tick-start snapshot would differ)");
      }
    }
  }
  return true;
}

VerifyReport Verify(const Script& script, const VerifierOptions& options,
                    DiagnosticSink* sink) {
  Verifier verifier(script, options, sink);
  return verifier.Run();
}

Status Analyze(const Script& script, Restriction restriction,
               const std::function<bool(const std::string&)>& is_builtin,
               AnalysisReport* report) {
  VerifierOptions options;
  options.restriction = restriction;
  options.is_builtin = is_builtin;
  DiagnosticSink sink;
  VerifyReport full = Verify(script, options, &sink);
  if (report != nullptr) {
    report->stats = full.stats;
    report->max_call_depth = full.max_call_depth;
  }
  // Historical contract: fail on the first *structural* finding only (the
  // verifier's phase/bindings/cost findings need host context to be
  // meaningful and are surfaced through Verify()).
  for (const Diagnostic& d : sink.diagnostics()) {
    if (d.severity != Severity::kError || d.pass != DiagPass::kStructure) {
      continue;
    }
    if (d.loc.valid()) {
      return Status::ParseError(
          StringFormat("line %d: %s", d.loc.line, d.message.c_str()));
    }
    return Status::ParseError(d.message);
  }
  return Status::OK();
}

}  // namespace gamedb::script
