#include "script/analyzer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "common/string_util.h"
#include "core/reflect.h"
#include "planner/plan.h"

namespace gamedb::script {

const char* RestrictionName(Restriction r) {
  switch (r) {
    case Restriction::kFull:
      return "full";
    case Restriction::kNoRecursion:
      return "no-recursion";
    case Restriction::kDeclarative:
      return "declarative";
  }
  return "?";
}

const char* StrictnessName(Strictness s) {
  switch (s) {
    case Strictness::kOff:
      return "off";
    case Strictness::kWarn:
      return "warn";
    case Strictness::kStrict:
      return "strict";
  }
  return "?";
}

const char* PhaseContextName(PhaseContext p) {
  switch (p) {
    case PhaseContext::kSequential:
      return "sequential";
    case PhaseContext::kParallelDefer:
      return "parallel-defer";
    case PhaseContext::kParallelReject:
      return "parallel-reject";
  }
  return "?";
}

std::string EffectSetName(uint32_t effects) {
  if (effects == kEffectNone) return "pure";
  std::string out;
  auto add = [&](uint32_t bit, const char* tok) {
    if ((effects & bit) == 0) return;
    if (!out.empty()) out += "|";
    out += tok;
  };
  add(kEffectWorldRead, "read");
  add(kEffectViewRead, "view-read");
  add(kEffectEmit, "emit");
  add(kEffectGatedWrite, "write");
  add(kEffectSpawn, "spawn");
  add(kEffectFire, "fire");
  return out;
}

SchemaCatalog ReflectionSchema() {
  SchemaCatalog schema;
  schema.has_component = [](const std::string& comp) {
    return TypeRegistry::Global().FindByName(comp) != nullptr;
  };
  schema.has_field = [](const std::string& comp, const std::string& field) {
    const TypeInfo* info = TypeRegistry::Global().FindByName(comp);
    return info != nullptr && info->FindField(field) != nullptr;
  };
  return schema;
}

namespace {

/// How the cost pass prices a world builtin.
enum class CostClass : uint8_t {
  kCheap,        ///< O(1) native work
  kScan,         ///< visits every row of a table (scan + predicate)
  kSpatial,      ///< spatial probe + candidate visits
  kViewConst,    ///< O(1) view read
  kViewMembers,  ///< materializes the view membership snapshot
};

constexpr int kNoArg = -1;

/// Static signature of a world/view/trigger builtin: its effect bits, its
/// arity (as enforced at runtime by ExpectArgs), which literal string args
/// name schema objects, and its cost class. Builtins absent from this table
/// (math, list ops, random, ...) are effect-free and priced as kCheap.
struct BuiltinSig {
  const char* name;
  uint32_t effects;
  int arity;  ///< -1: variadic (fire)
  const char* signature;
  int comp_arg;     ///< literal arg resolved as a component name
  int field_arg;    ///< literal arg resolved as a field of comp_arg
  int view_arg;     ///< literal arg resolved as a LiveView name
  int channel_arg;  ///< literal arg resolved as an effect channel
  int event_arg;    ///< literal arg resolved as a trigger event
  int op_arg;       ///< literal arg holding a comparison operator
  CostClass cost;
};

// Keep signature strings identical to the runtime ExpectArgs call sites in
// bindings.cc / triggers.cc — the static arity diagnostic renders the same
// text a designer would have hit at runtime.
const BuiltinSig kBuiltinSigs[] = {
    {"spawn", kEffectSpawn, 0, "spawn()", kNoArg, kNoArg, kNoArg, kNoArg,
     kNoArg, kNoArg, CostClass::kCheap},
    {"destroy", kEffectGatedWrite, 1, "destroy(e)", kNoArg, kNoArg, kNoArg,
     kNoArg, kNoArg, kNoArg, CostClass::kCheap},
    {"is_alive", kEffectWorldRead, 1, "is_alive(e)", kNoArg, kNoArg, kNoArg,
     kNoArg, kNoArg, kNoArg, CostClass::kCheap},
    {"has", kEffectWorldRead, 2, "has(e, \"Comp\")", 1, kNoArg, kNoArg, kNoArg,
     kNoArg, kNoArg, CostClass::kCheap},
    {"add", kEffectGatedWrite, 2, "add(e, \"Comp\")", 1, kNoArg, kNoArg,
     kNoArg, kNoArg, kNoArg, CostClass::kCheap},
    {"remove", kEffectGatedWrite, 2, "remove(e, \"Comp\")", 1, kNoArg, kNoArg,
     kNoArg, kNoArg, kNoArg, CostClass::kCheap},
    {"get", kEffectWorldRead, 3, "get(e, \"Comp\", \"field\")", 1, 2, kNoArg,
     kNoArg, kNoArg, kNoArg, CostClass::kCheap},
    {"set", kEffectGatedWrite, 4, "set(e, \"Comp\", \"field\", v)", 1, 2,
     kNoArg, kNoArg, kNoArg, kNoArg, CostClass::kCheap},
    {"entities_with", kEffectWorldRead, 1, "entities_with(\"Comp\")", 0,
     kNoArg, kNoArg, kNoArg, kNoArg, kNoArg, CostClass::kScan},
    {"count", kEffectWorldRead, 1, "count(\"Comp\")", 0, kNoArg, kNoArg,
     kNoArg, kNoArg, kNoArg, CostClass::kScan},
    {"sum", kEffectWorldRead, 2, "sum(\"Comp\", \"field\")", 0, 1, kNoArg,
     kNoArg, kNoArg, kNoArg, CostClass::kScan},
    {"smin", kEffectWorldRead, 2, "smin(\"Comp\", \"field\")", 0, 1, kNoArg,
     kNoArg, kNoArg, kNoArg, CostClass::kScan},
    {"smax", kEffectWorldRead, 2, "smax(\"Comp\", \"field\")", 0, 1, kNoArg,
     kNoArg, kNoArg, kNoArg, CostClass::kScan},
    {"avg", kEffectWorldRead, 2, "avg(\"Comp\", \"field\")", 0, 1, kNoArg,
     kNoArg, kNoArg, kNoArg, CostClass::kScan},
    {"argmin", kEffectWorldRead, 2, "argmin(\"Comp\", \"field\")", 0, 1,
     kNoArg, kNoArg, kNoArg, kNoArg, CostClass::kScan},
    {"argmax", kEffectWorldRead, 2, "argmax(\"Comp\", \"field\")", 0, 1,
     kNoArg, kNoArg, kNoArg, kNoArg, CostClass::kScan},
    {"where", kEffectWorldRead, 4, "where(\"Comp\", \"field\", \"op\", v)", 0,
     1, kNoArg, kNoArg, kNoArg, 2, CostClass::kScan},
    {"within", kEffectWorldRead, 2, "within(center, radius)", kNoArg, kNoArg,
     kNoArg, kNoArg, kNoArg, kNoArg, CostClass::kSpatial},
    {"emit", kEffectEmit, 3, "emit(\"channel\", target, amount)", kNoArg,
     kNoArg, kNoArg, 0, kNoArg, kNoArg, CostClass::kCheap},
    {"tick", kEffectWorldRead, 0, "tick()", kNoArg, kNoArg, kNoArg, kNoArg,
     kNoArg, kNoArg, CostClass::kCheap},
    {"view_count", kEffectViewRead, 1, "view_count(\"name\")", kNoArg, kNoArg,
     0, kNoArg, kNoArg, kNoArg, CostClass::kViewConst},
    {"view_contains", kEffectViewRead, 2, "view_contains(\"name\", e)", kNoArg,
     kNoArg, 0, kNoArg, kNoArg, kNoArg, CostClass::kViewConst},
    {"view_members", kEffectViewRead, 1, "view_members(\"name\")", kNoArg,
     kNoArg, 0, kNoArg, kNoArg, kNoArg, CostClass::kViewMembers},
    {"view_aggregate", kEffectViewRead, 1, "view_aggregate(\"name\")", kNoArg,
     kNoArg, 0, kNoArg, kNoArg, kNoArg, CostClass::kViewConst},
    {"fire", kEffectFire, -1, "fire(\"event\", args...)", kNoArg, kNoArg,
     kNoArg, kNoArg, 0, kNoArg, CostClass::kCheap},
};

const BuiltinSig* FindSig(const std::string& name) {
  for (const BuiltinSig& sig : kBuiltinSigs) {
    if (name == sig.name) return &sig;
  }
  return nullptr;
}

/// Literal string argument at `idx`, or nullptr when the argument is absent
/// or computed at runtime (only literals are statically checkable).
const std::string* LiteralStringArg(const Expr& call, size_t idx) {
  if (idx >= call.args.size()) return nullptr;
  const Expr& a = *call.args[idx];
  if (a.kind != ExprKind::kLiteral || !a.literal.IsString()) return nullptr;
  return &a.literal.AsString();
}

SourceLoc LocOf(const Expr& e) { return SourceLoc{e.line, e.col}; }
SourceLoc LocOf(const Stmt& s) { return SourceLoc{s.line, s.col}; }

bool IsCmpOpToken(const std::string& op) {
  return op == "==" || op == "!=" || op == "<" || op == "<=" || op == ">" ||
         op == ">=";
}

class Verifier {
 public:
  Verifier(const Script& script, const VerifierOptions& options,
           DiagnosticSink* sink)
      : script_(script), options_(options), sink_(sink) {}

  VerifyReport Run() {
    // --- structure ------------------------------------------------------
    for (const auto& s : script_.top_level) StructureStmt(*s, 0);
    for (const auto& d : script_.decls) {
      for (const auto& b : d->body) StructureStmt(*b, 0);
    }
    BuildCallGraph();
    if (options_.restriction != Restriction::kFull) CheckRecursion();

    // --- phase ----------------------------------------------------------
    ComputeEffects();
    for (const auto& s : script_.top_level) PhaseStmt(*s);
    for (const auto& d : script_.decls) {
      for (const auto& b : d->body) PhaseStmt(*b);
    }
    if (options_.top_level_must_be_pure) {
      for (const auto& s : script_.top_level) TopLevelPurityStmt(*s);
    }

    // --- bindings -------------------------------------------------------
    for (const auto& s : script_.top_level) BindingsStmt(*s);
    for (const auto& d : script_.decls) {
      for (const auto& b : d->body) BindingsStmt(*b);
    }

    // --- cost -----------------------------------------------------------
    VerifyReport report = CostPassAndReport();
    sink_->SetOrigin(script_.name);
    return report;
  }

 private:
  // Is `name` a call to a native builtin (not shadowed by a script fn)?
  bool ResolvesToBuiltin(const std::string& name) const {
    if (script_.functions.count(name)) return false;
    return !options_.is_builtin || options_.is_builtin(name);
  }

  const BuiltinSig* SigFor(const Expr& call) const {
    if (call.kind != ExprKind::kCall) return nullptr;
    if (!ResolvesToBuiltin(call.name)) return nullptr;
    return FindSig(call.name);
  }

  // ---- structure pass --------------------------------------------------

  void StructureExpr(const Expr& e) {
    if (e.kind == ExprKind::kCall) {
      if (!script_.functions.count(e.name) &&
          (!options_.is_builtin || !options_.is_builtin(e.name))) {
        sink_->Error(DiagPass::kStructure, LocOf(e),
                     "call to undefined function '" + e.name + "'");
      }
    }
    for (const auto& a : e.args) StructureExpr(*a);
  }

  void StructureStmt(const Stmt& s, int loop_depth) {
    switch (s.kind) {
      case StmtKind::kWhile:
      case StmtKind::kForeach:
        if (options_.restriction == Restriction::kDeclarative) {
          sink_->Error(
              DiagPass::kStructure, LocOf(s),
              std::string("iteration ('") +
                  (s.kind == StmtKind::kWhile ? "while" : "foreach") +
                  "') is not allowed at the declarative restriction level; "
                  "use aggregate builtins");
        }
        ++loop_depth;
        break;
      case StmtKind::kBreak:
      case StmtKind::kContinue:
        if (loop_depth == 0) {
          sink_->Error(DiagPass::kStructure, LocOf(s),
                       s.kind == StmtKind::kBreak ? "'break' outside loop"
                                                  : "'continue' outside loop");
        }
        break;
      case StmtKind::kFn:
      case StmtKind::kOn:
        sink_->Error(DiagPass::kStructure, LocOf(s),
                     "nested function declarations are not allowed");
        break;
      default:
        break;
    }
    if (s.expr) StructureExpr(*s.expr);
    for (const auto& b : s.body) StructureStmt(*b, loop_depth);
    for (const auto& b : s.else_body) StructureStmt(*b, loop_depth);
  }

  // ---- call graph ------------------------------------------------------

  struct CallSite {
    std::string callee;
    SourceLoc loc;
  };

  void CollectCallsExpr(const Expr& e, std::vector<CallSite>* out) {
    if (e.kind == ExprKind::kCall && script_.functions.count(e.name)) {
      out->push_back(CallSite{e.name, LocOf(e)});
    }
    for (const auto& a : e.args) CollectCallsExpr(*a, out);
  }
  void CollectCalls(const Stmt& s, std::vector<CallSite>* out) {
    if (s.expr) CollectCallsExpr(*s.expr, out);
    for (const auto& b : s.body) CollectCalls(*b, out);
    for (const auto& b : s.else_body) CollectCalls(*b, out);
  }

  void BuildCallGraph() {
    for (const auto& d : script_.decls) {
      if (d->kind != StmtKind::kFn) continue;
      std::vector<CallSite>& sites = calls_[d->name];
      for (const auto& b : d->body) CollectCalls(*b, &sites);
    }
  }

  // Recursion check in declaration order; the diagnostic is anchored at the
  // call site that closes the cycle, so the designer sees *where* the
  // recursive call happens, not just that one exists.
  void CheckRecursion() {
    std::unordered_set<std::string> verified;
    for (const auto& d : script_.decls) {
      if (d->kind != StmtKind::kFn) continue;
      std::unordered_set<std::string> on_stack;
      RecursionDfs(d->name, &on_stack, &verified);
    }
  }

  void RecursionDfs(const std::string& name,
                    std::unordered_set<std::string>* on_stack,
                    std::unordered_set<std::string>* verified) {
    if (verified->count(name)) return;
    on_stack->insert(name);
    auto it = calls_.find(name);
    if (it != calls_.end()) {
      for (const CallSite& site : it->second) {
        if (on_stack->count(site.callee)) {
          sink_->Error(DiagPass::kStructure, site.loc,
                       "recursion involving '" + site.callee +
                           "' is not allowed at the " +
                           RestrictionName(options_.restriction) +
                           " restriction level");
          continue;  // report, but don't descend into the cycle
        }
        RecursionDfs(site.callee, on_stack, verified);
      }
    }
    on_stack->erase(name);
    verified->insert(name);
  }

  // ---- phase pass ------------------------------------------------------

  uint32_t DirectEffects(const std::string& fn_name) {
    uint32_t effects = 0;
    const Stmt* decl = nullptr;
    for (const auto& d : script_.decls) {
      if (d->kind == StmtKind::kFn && d->name == fn_name) {
        decl = d.get();
        break;
      }
    }
    if (decl == nullptr) return 0;
    for (const auto& b : decl->body) DirectEffectsStmt(*b, &effects);
    return effects;
  }

  void DirectEffectsExpr(const Expr& e, uint32_t* effects) {
    if (const BuiltinSig* sig = SigFor(e)) *effects |= sig->effects;
    for (const auto& a : e.args) DirectEffectsExpr(*a, effects);
  }
  void DirectEffectsStmt(const Stmt& s, uint32_t* effects) {
    if (s.expr) DirectEffectsExpr(*s.expr, effects);
    for (const auto& b : s.body) DirectEffectsStmt(*b, effects);
    for (const auto& b : s.else_body) DirectEffectsStmt(*b, effects);
  }

  // Transitive effects over the call graph by fixpoint iteration (the
  // graph may contain cycles under Restriction::kFull; effects are a small
  // monotone lattice, so this converges in at most |functions| rounds).
  void ComputeEffects() {
    for (const auto& [name, fn] : script_.functions) {
      (void)fn;
      effects_[name] = DirectEffects(name);
    }
    bool changed = true;
    while (changed) {
      changed = false;
      for (auto& [name, eff] : effects_) {
        uint32_t merged = eff;
        for (const CallSite& site : calls_[name]) {
          merged |= effects_[site.callee];
        }
        if (merged != eff) {
          eff = merged;
          changed = true;
        }
      }
    }
  }

  uint32_t TransitiveEffects(const std::string& fn_name) {
    auto it = effects_.find(fn_name);
    return it == effects_.end() ? 0 : it->second;
  }

  // Checks one builtin call site against the execution phase. Messages
  // mirror the runtime rejections in bindings.cc word for word — the whole
  // point is that the designer reads the same explanation at load time.
  void PhaseCheckSite(const Expr& call, const BuiltinSig& sig) {
    if (options_.phase == PhaseContext::kSequential) return;
    if (sig.effects & kEffectSpawn) {
      sink_->Error(DiagPass::kPhase, LocOf(call),
                   "spawn() is not available during the parallel query phase "
                   "(entity ids are allocated in the apply phase); spawn from "
                   "the host or a trigger handler instead");
      return;
    }
    if (options_.phase == PhaseContext::kParallelReject &&
        (sig.effects & kEffectGatedWrite)) {
      sink_->Error(DiagPass::kPhase, LocOf(call),
                   call.name +
                       "() mutates the world; the scripted query phase is "
                       "read-only — emit() an effect and apply it from the "
                       "host instead");
    }
  }

  void PhaseExpr(const Expr& e) {
    if (const BuiltinSig* sig = SigFor(e)) PhaseCheckSite(e, *sig);
    for (const auto& a : e.args) PhaseExpr(*a);
  }
  void PhaseStmt(const Stmt& s) {
    if (s.expr) PhaseExpr(*s.expr);
    for (const auto& b : s.body) PhaseStmt(*b);
    for (const auto& b : s.else_body) PhaseStmt(*b);
  }

  // Top-level purity: the host runs the top level once per shard, so any
  // effect there would be applied shard_count times. Direct offense sites
  // are flagged by PhaseExpr already when the phase bans them; here we flag
  // *all* impure effects, including calls into impure functions.
  static constexpr uint32_t kImpure =
      kEffectEmit | kEffectGatedWrite | kEffectSpawn | kEffectFire;

  void TopLevelPurityExpr(const Expr& e) {
    if (e.kind == ExprKind::kCall) {
      if (const BuiltinSig* sig = FindSig(e.name);
          sig != nullptr && ResolvesToBuiltin(e.name) &&
          (sig->effects & kImpure)) {
        sink_->Error(DiagPass::kPhase, LocOf(e),
                     "script top level must not mutate the world or emit "
                     "effects (it runs once per shard); do it from the host "
                     "or inside the tick function");
      } else if (script_.functions.count(e.name)) {
        uint32_t eff = TransitiveEffects(e.name) & kImpure;
        if (eff != 0) {
          sink_->Error(
              DiagPass::kPhase, LocOf(e),
              "script top level must not mutate the world or emit effects "
              "(it runs once per shard); '" +
                  e.name + "' has effects [" + EffectSetName(eff) +
                  "] — do it from the host or inside the tick function");
        }
      }
    }
    for (const auto& a : e.args) TopLevelPurityExpr(*a);
  }
  void TopLevelPurityStmt(const Stmt& s) {
    if (s.expr) TopLevelPurityExpr(*s.expr);
    for (const auto& b : s.body) TopLevelPurityStmt(*b);
    for (const auto& b : s.else_body) TopLevelPurityStmt(*b);
  }

  // ---- bindings pass ---------------------------------------------------

  void BindingsCheckSite(const Expr& call, const BuiltinSig& sig) {
    // Arity first (mirrors runtime ExpectArgs / the fire() check).
    if (sig.arity >= 0) {
      if (call.args.size() != static_cast<size_t>(sig.arity)) {
        sink_->Error(DiagPass::kBindings, LocOf(call),
                     StringFormat("expected %zu args: %s",
                                  static_cast<size_t>(sig.arity),
                                  sig.signature));
        return;  // positional checks below would mis-index
      }
    } else if (call.args.empty()) {
      sink_->Error(DiagPass::kBindings, LocOf(call),
                   std::string(sig.signature) + " requires an event name");
      return;
    }

    const std::string* comp =
        sig.comp_arg >= 0
            ? LiteralStringArg(call, static_cast<size_t>(sig.comp_arg))
            : nullptr;
    if (comp != nullptr && options_.schema.has_component) {
      if (!options_.schema.has_component(*comp)) {
        sink_->Error(DiagPass::kBindings,
                     LocOf(*call.args[static_cast<size_t>(sig.comp_arg)]),
                     "unknown component '" + *comp + "'");
        comp = nullptr;  // field check below would be noise
      }
    }
    if (comp != nullptr && sig.field_arg >= 0 && options_.schema.has_field) {
      if (const std::string* field =
              LiteralStringArg(call, static_cast<size_t>(sig.field_arg))) {
        if (!options_.schema.has_field(*comp, *field)) {
          sink_->Error(DiagPass::kBindings,
                       LocOf(*call.args[static_cast<size_t>(sig.field_arg)]),
                       "component '" + *comp + "' has no field '" + *field +
                           "'");
        }
      }
    }
    if (sig.view_arg >= 0 && options_.schema.has_view) {
      if (const std::string* view =
              LiteralStringArg(call, static_cast<size_t>(sig.view_arg))) {
        if (!options_.schema.has_view(*view)) {
          sink_->Error(DiagPass::kBindings,
                       LocOf(*call.args[static_cast<size_t>(sig.view_arg)]),
                       call.name + ": no view named '" + *view + "'");
        }
      }
    }
    if (sig.channel_arg >= 0 && options_.schema.has_channel) {
      if (const std::string* channel = LiteralStringArg(
              call, static_cast<size_t>(sig.channel_arg))) {
        if (!options_.schema.has_channel(*channel)) {
          sink_->Warn(
              DiagPass::kBindings,
              LocOf(*call.args[static_cast<size_t>(sig.channel_arg)]),
              "emit() into unwired channel '" + *channel +
                  "'; contributions to it are buffered but never drained");
        }
      }
    }
    if (sig.event_arg >= 0 && options_.schema.has_event) {
      if (const std::string* event =
              LiteralStringArg(call, static_cast<size_t>(sig.event_arg))) {
        if (!options_.schema.has_event(*event)) {
          sink_->Warn(DiagPass::kBindings,
                      LocOf(*call.args[static_cast<size_t>(sig.event_arg)]),
                      "fire(\"" + *event +
                          "\") has no handler; the event will be dropped");
        }
      }
    }
    if (sig.op_arg >= 0) {
      if (const std::string* op =
              LiteralStringArg(call, static_cast<size_t>(sig.op_arg))) {
        if (!IsCmpOpToken(*op)) {
          sink_->Error(DiagPass::kBindings,
                       LocOf(*call.args[static_cast<size_t>(sig.op_arg)]),
                       "unknown comparison operator '" + *op + "'");
        }
      }
    }
  }

  void BindingsExpr(const Expr& e) {
    if (const BuiltinSig* sig = SigFor(e)) BindingsCheckSite(e, *sig);
    for (const auto& a : e.args) BindingsExpr(*a);
  }
  void BindingsStmt(const Stmt& s) {
    if (s.expr) BindingsExpr(*s.expr);
    for (const auto& b : s.body) BindingsStmt(*b);
    for (const auto& b : s.else_body) BindingsStmt(*b);
  }

  // ---- cost pass -------------------------------------------------------

  double ScanCost() const {
    return options_.cost.assumed_rows * (constants_.scan_row +
                                         constants_.predicate);
  }

  double BuiltinCost(const BuiltinSig& sig) const {
    switch (sig.cost) {
      case CostClass::kCheap:
        return options_.cost.builtin_call;
      case CostClass::kScan:
        return ScanCost();
      case CostClass::kSpatial:
        return constants_.spatial_probe +
               options_.cost.assumed_rows * constants_.spatial_candidate;
      case CostClass::kViewConst:
        return options_.cost.builtin_call;
      case CostClass::kViewMembers:
        return options_.cost.builtin_call +
               options_.cost.assumed_view_members * constants_.scan_row;
    }
    return options_.cost.builtin_call;
  }

  // Worst-case iteration count of a foreach over `iterable`.
  double TripCount(const Expr& iterable) const {
    if (iterable.kind == ExprKind::kList) {
      return static_cast<double>(iterable.args.size());
    }
    if (iterable.kind == ExprKind::kCall && ResolvesToBuiltin(iterable.name)) {
      const std::string& n = iterable.name;
      if (n == "entities_with" || n == "where" || n == "within") {
        return options_.cost.assumed_rows;
      }
      if (n == "view_members") return options_.cost.assumed_view_members;
      if (n == "range" && iterable.args.size() == 1 &&
          iterable.args[0]->kind == ExprKind::kLiteral &&
          iterable.args[0]->literal.IsNumber()) {
        return std::max(0.0, iterable.args[0]->literal.AsNumber());
      }
    }
    return options_.cost.assumed_loop_iterations;
  }

  double ExprCost(const Expr& e, std::unordered_set<std::string>* on_stack) {
    double cost = options_.cost.ast_node;
    for (const auto& a : e.args) cost += ExprCost(*a, on_stack);
    if (e.kind == ExprKind::kCall) {
      if (const BuiltinSig* sig = SigFor(e)) {
        cost += BuiltinCost(*sig);
      } else if (script_.functions.count(e.name)) {
        cost += FunctionCost(e.name, on_stack);
      } else if (ResolvesToBuiltin(e.name)) {
        cost += options_.cost.builtin_call;  // math/list/etc builtin
      }
    }
    return cost;
  }

  double BodyCost(const std::vector<std::unique_ptr<Stmt>>& body,
                  std::unordered_set<std::string>* on_stack) {
    double cost = 0;
    for (const auto& s : body) cost += StmtCost(*s, on_stack);
    return cost;
  }

  double StmtCost(const Stmt& s, std::unordered_set<std::string>* on_stack) {
    double cost = options_.cost.ast_node;
    switch (s.kind) {
      case StmtKind::kIf: {
        if (s.expr) cost += ExprCost(*s.expr, on_stack);
        double then_cost = BodyCost(s.body, on_stack);
        double else_cost = BodyCost(s.else_body, on_stack);
        cost += std::max(then_cost, else_cost);
        break;
      }
      case StmtKind::kWhile: {
        double per_iter = (s.expr ? ExprCost(*s.expr, on_stack) : 0) +
                          BodyCost(s.body, on_stack);
        cost += options_.cost.assumed_loop_iterations * per_iter;
        break;
      }
      case StmtKind::kForeach: {
        double trips = s.expr ? TripCount(*s.expr) : 0;
        if (s.expr) cost += ExprCost(*s.expr, on_stack);
        cost += trips * (options_.cost.ast_node + BodyCost(s.body, on_stack));
        break;
      }
      default:
        if (s.expr) cost += ExprCost(*s.expr, on_stack);
        cost += BodyCost(s.body, on_stack);
        cost += BodyCost(s.else_body, on_stack);
        break;
    }
    return cost;
  }

  double FunctionCost(const std::string& name,
                      std::unordered_set<std::string>* on_stack) {
    auto it = fn_cost_.find(name);
    if (it != fn_cost_.end()) return it->second;
    if (on_stack->count(name)) {
      // Recursion (only reachable under Restriction::kFull): no static
      // bound exists.
      return std::numeric_limits<double>::infinity();
    }
    const Stmt* decl = nullptr;
    for (const auto& d : script_.decls) {
      if (d->kind == StmtKind::kFn && d->name == name) {
        decl = d.get();
        break;
      }
    }
    if (decl == nullptr) return 0;
    on_stack->insert(name);
    double cost = BodyCost(decl->body, on_stack);
    on_stack->erase(name);
    // Only memoize cycle-free results: a cost computed while the cycle head
    // was on the stack would under-report the recursive branch.
    if (std::isfinite(cost)) fn_cost_[name] = cost;
    return cost;
  }

  size_t Depth(const std::string& name,
               std::unordered_set<std::string>* on_stack) {
    if (on_stack->count(name)) return 0;  // cycle (only under kFull)
    on_stack->insert(name);
    size_t best = 0;
    for (const CallSite& site : calls_[name]) {
      best = std::max(best, Depth(site.callee, on_stack));
    }
    on_stack->erase(name);
    return best + 1;
  }

  void AddEntry(VerifyReport* report, std::string name, bool is_handler,
                SourceLoc loc, uint32_t effects, double cost) {
    EntryFacts entry;
    entry.name = std::move(name);
    entry.is_handler = is_handler;
    entry.loc = loc;
    entry.facts.effects = effects;
    entry.facts.cost = std::isfinite(cost) ? cost : 0;
    entry.facts.cost_unbounded = !std::isfinite(cost);
    report->effects |= effects;
    if (entry.facts.cost_unbounded) {
      if (options_.cost_budget > 0) {
        sink_->Error(
            DiagPass::kCost, loc,
            "'" + entry.name +
                "' is recursive; its worst-case cost is statically unbounded "
                "and cannot meet the cost budget of " +
                StringFormat("%.0f", options_.cost_budget) + " units");
      }
    } else {
      if (cost > report->max_entry_cost) {
        report->max_entry_cost = cost;
        report->max_entry_name = entry.name;
      }
      if (options_.cost_budget > 0 && cost > options_.cost_budget) {
        sink_->Error(
            DiagPass::kCost, loc,
            "'" + entry.name + "' has a worst-case cost of " +
                StringFormat("%.0f", cost) +
                " units per invocation, over the budget of " +
                StringFormat("%.0f", options_.cost_budget) + " units");
      }
    }
    report->entries.push_back(std::move(entry));
  }

  VerifyReport CostPassAndReport() {
    if (options_.cost.constants != nullptr) {
      constants_ = *options_.cost.constants;
    }
    VerifyReport report;
    report.stats = CountNodes(script_);
    for (const auto& [name, fn] : script_.functions) {
      (void)fn;
      std::unordered_set<std::string> on_stack;
      report.max_call_depth = std::max(report.max_call_depth,
                                       Depth(name, &on_stack));
    }

    if (!script_.top_level.empty()) {
      uint32_t eff = 0;
      for (const auto& s : script_.top_level) DirectEffectsStmt(*s, &eff);
      std::vector<CallSite> sites;
      for (const auto& s : script_.top_level) CollectCalls(*s, &sites);
      for (const CallSite& site : sites) eff |= TransitiveEffects(site.callee);
      std::unordered_set<std::string> on_stack;
      double cost = 0;
      for (const auto& s : script_.top_level) cost += StmtCost(*s, &on_stack);
      AddEntry(&report, "<top level>", /*is_handler=*/false,
               LocOf(*script_.top_level.front()), eff, cost);
    }
    for (const auto& d : script_.decls) {
      if (d->kind != StmtKind::kFn && d->kind != StmtKind::kOn) continue;
      bool is_handler = d->kind == StmtKind::kOn;
      std::string name = is_handler ? "on " + d->name : d->name;
      uint32_t eff;
      double cost;
      if (is_handler) {
        eff = 0;
        for (const auto& b : d->body) DirectEffectsStmt(*b, &eff);
        std::vector<CallSite> sites;
        for (const auto& b : d->body) CollectCalls(*b, &sites);
        for (const CallSite& site : sites) {
          eff |= TransitiveEffects(site.callee);
        }
        std::unordered_set<std::string> on_stack;
        cost = 0;
        for (const auto& b : d->body) cost += StmtCost(*b, &on_stack);
      } else {
        eff = TransitiveEffects(d->name);
        std::unordered_set<std::string> on_stack;
        cost = FunctionCost(d->name, &on_stack);
      }
      AddEntry(&report, std::move(name), is_handler, LocOf(*d), eff, cost);
    }
    return report;
  }

  const Script& script_;
  const VerifierOptions& options_;
  DiagnosticSink* sink_;
  planner::CostConstants constants_;
  std::unordered_map<std::string, std::vector<CallSite>> calls_;
  std::unordered_map<std::string, uint32_t> effects_;
  std::unordered_map<std::string, double> fn_cost_;
};

}  // namespace

VerifyReport Verify(const Script& script, const VerifierOptions& options,
                    DiagnosticSink* sink) {
  Verifier verifier(script, options, sink);
  return verifier.Run();
}

Status Analyze(const Script& script, Restriction restriction,
               const std::function<bool(const std::string&)>& is_builtin,
               AnalysisReport* report) {
  VerifierOptions options;
  options.restriction = restriction;
  options.is_builtin = is_builtin;
  DiagnosticSink sink;
  VerifyReport full = Verify(script, options, &sink);
  if (report != nullptr) {
    report->stats = full.stats;
    report->max_call_depth = full.max_call_depth;
  }
  // Historical contract: fail on the first *structural* finding only (the
  // verifier's phase/bindings/cost findings need host context to be
  // meaningful and are surfaced through Verify()).
  for (const Diagnostic& d : sink.diagnostics()) {
    if (d.severity != Severity::kError || d.pass != DiagPass::kStructure) {
      continue;
    }
    if (d.loc.valid()) {
      return Status::ParseError(
          StringFormat("line %d: %s", d.loc.line, d.message.c_str()));
    }
    return Status::ParseError(d.message);
  }
  return Status::OK();
}

}  // namespace gamedb::script
