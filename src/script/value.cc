#include "script/value.h"

#include "common/string_util.h"

namespace gamedb::script {

Result<double> Value::ToNumber() const {
  if (IsNumber()) return AsNumber();
  if (IsBool()) return AsBool() ? 1.0 : 0.0;
  return Status::InvalidArgument(std::string("expected number, got ") +
                                 TypeName());
}

bool Value::Truthy() const {
  if (IsNil()) return false;
  if (IsBool()) return AsBool();
  if (IsNumber()) return AsNumber() != 0.0;
  return true;
}

bool Value::Equals(const Value& o) const {
  if (v_.index() != o.v_.index()) {
    // Allow bool/number cross equality (designers write `flag == 1`).
    if (IsNumber() && o.IsBool()) return AsNumber() == (o.AsBool() ? 1.0 : 0.0);
    if (IsBool() && o.IsNumber()) return (AsBool() ? 1.0 : 0.0) == o.AsNumber();
    return false;
  }
  if (IsNil()) return true;
  if (IsBool()) return AsBool() == o.AsBool();
  if (IsNumber()) return AsNumber() == o.AsNumber();
  if (IsString()) return AsString() == o.AsString();
  if (IsEntity()) return AsEntity() == o.AsEntity();
  if (IsVec3()) return AsVec3() == o.AsVec3();
  const auto& a = *AsList();
  const auto& b = *o.AsList();
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!a[i].Equals(b[i])) return false;
  }
  return true;
}

std::string Value::ToString() const {
  if (IsNil()) return "nil";
  if (IsBool()) return AsBool() ? "true" : "false";
  if (IsNumber()) {
    double d = AsNumber();
    if (d == static_cast<int64_t>(d) && std::abs(d) < 1e15) {
      return std::to_string(static_cast<int64_t>(d));
    }
    return StringFormat("%g", d);
  }
  if (IsString()) return AsString();
  if (IsEntity()) return AsEntity().ToString();
  if (IsVec3()) return AsVec3().ToString();
  std::string out = "[";
  const auto& items = *AsList();
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    out += items[i].ToString();
  }
  out += "]";
  return out;
}

const char* Value::TypeName() const {
  if (IsNil()) return "nil";
  if (IsBool()) return "bool";
  if (IsNumber()) return "number";
  if (IsString()) return "string";
  if (IsEntity()) return "entity";
  if (IsVec3()) return "vec3";
  return "list";
}

}  // namespace gamedb::script
