#pragma once

/// \file value.h
/// GSL runtime values: nil, bool, number (double), string, entity handle,
/// vec3, and list. Lists have reference semantics (shared), everything else
/// is a value type — matching what designers expect from scripting languages.

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/geometry.h"
#include "common/status.h"
#include "core/entity.h"

namespace gamedb::script {

class Value;
using ValueList = std::shared_ptr<std::vector<Value>>;

/// A GSL value.
class Value {
 public:
  Value() : v_(std::monostate{}) {}                       // nil
  Value(bool b) : v_(b) {}                                // NOLINT
  Value(double d) : v_(d) {}                              // NOLINT
  Value(int i) : v_(static_cast<double>(i)) {}            // NOLINT
  Value(std::string s) : v_(std::move(s)) {}              // NOLINT
  Value(const char* s) : v_(std::string(s)) {}            // NOLINT
  Value(EntityId e) : v_(e) {}                            // NOLINT
  Value(Vec3 vec) : v_(vec) {}                            // NOLINT
  Value(ValueList list) : v_(std::move(list)) {}          // NOLINT

  static Value Nil() { return Value(); }
  static Value NewList(std::vector<Value> items = {}) {
    return Value(std::make_shared<std::vector<Value>>(std::move(items)));
  }

  bool IsNil() const { return std::holds_alternative<std::monostate>(v_); }
  bool IsBool() const { return std::holds_alternative<bool>(v_); }
  bool IsNumber() const { return std::holds_alternative<double>(v_); }
  bool IsString() const { return std::holds_alternative<std::string>(v_); }
  bool IsEntity() const { return std::holds_alternative<EntityId>(v_); }
  bool IsVec3() const { return std::holds_alternative<Vec3>(v_); }
  bool IsList() const { return std::holds_alternative<ValueList>(v_); }

  /// Typed accessors; calling the wrong one is a checked error (use the
  /// Is* predicates or the As* converting accessors first).
  bool AsBool() const { return std::get<bool>(v_); }
  double AsNumber() const { return std::get<double>(v_); }
  const std::string& AsString() const { return std::get<std::string>(v_); }
  EntityId AsEntity() const { return std::get<EntityId>(v_); }
  Vec3 AsVec3() const { return std::get<Vec3>(v_); }
  const ValueList& AsList() const { return std::get<ValueList>(v_); }

  /// Converting accessor: numbers pass through, anything else errors.
  Result<double> ToNumber() const;

  /// GSL truthiness: nil and false are falsy; 0 is falsy; everything else
  /// (including empty strings/lists) is truthy.
  bool Truthy() const;

  /// Structural equality (lists compare element-wise).
  bool Equals(const Value& o) const;

  /// Human-readable rendering (print(), diagnostics).
  std::string ToString() const;

  /// Type name for error messages.
  const char* TypeName() const;

 private:
  std::variant<std::monostate, bool, double, std::string, EntityId, Vec3,
               ValueList>
      v_;
};

}  // namespace gamedb::script
