#pragma once

/// \file lint_report.h
/// Rendering for verifier results beyond plain diagnostics: per-entry access
/// summaries, the pack conflict matrix (text + DOT), and the machine-readable
/// `gsl_lint --json` document with its validating parser. Lives in the
/// library (not the tool) so tests can pin the formats and future schedulers
/// can reuse the JSON emitter.

#include <string>
#include <vector>

#include "common/status.h"
#include "script/analyzer.h"
#include "script/diagnostics.h"

namespace gamedb::script {

/// Everything gsl_lint knows about one linted file.
struct LintFileResult {
  std::string file;
  PhaseContext phase = PhaseContext::kSequential;
  /// Non-empty when the file did not parse (then `report` is empty).
  std::string parse_error;
  std::vector<Diagnostic> diagnostics;
  VerifyReport report;
};

/// Human-readable access summaries + direct-write verdicts + conflict
/// matrix for one verified file. Deterministic (golden-testable).
std::string RenderAccessReport(const std::string& origin,
                               const VerifyReport& report);

/// Graphviz DOT rendering of the conflict graph (one `graph` per file;
/// conflict-free entries are isolated nodes).
std::string RenderConflictDot(const std::string& origin,
                              const VerifyReport& report);

/// The `gsl_lint --json` document (schema "gamedb.gsl_lint.v1"): schema
/// tag, werror flag, and one object per linted file with diagnostics,
/// entry access summaries, conflict edges, and a `static_cost` pack
/// estimate (summed per-entry verifier costs + the most expensive entry).
std::string RenderLintJson(const std::vector<LintFileResult>& files,
                           bool werror);

/// Validates that `json` parses as JSON *and* conforms to the
/// gamedb.gsl_lint.v1 shape (required keys, enum values, types). gsl_lint
/// round-trips its own output through this before printing, so a schema
/// regression fails in CI rather than in a consumer.
Status ValidateLintJson(const std::string& json);

}  // namespace gamedb::script
