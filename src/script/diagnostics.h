#pragma once

/// \file diagnostics.h
/// Source-located, multi-error diagnostics for the GSL static verifier
/// (script/analyzer.h). Unlike Status — which carries exactly one failure
/// and aborts the pass that produced it — a DiagnosticSink collects *every*
/// finding of a verification run, so a designer fixing a script sees all of
/// its problems at once, each with line/column, severity and the pass that
/// produced it. This is the layer that turns the analyzer's historical
/// fail-fast `Analyze()` into a real lint toolchain (tools/gsl_lint).

#include <string>
#include <vector>

#include "common/status.h"

namespace gamedb::script {

/// 1-based source position; {0,0} means "no location" (whole-script
/// findings such as an empty pack or a missing entry function).
struct SourceLoc {
  int line = 0;
  int col = 0;
  bool valid() const { return line > 0; }
};

enum class Severity : uint8_t {
  /// Suspicious but loadable (unknown effect channel, unhandled event).
  kWarning,
  /// Rejected under Strictness::kStrict; reported-and-loaded under kWarn.
  kError,
};

const char* SeverityName(Severity s);

/// Which verifier pass produced a finding (stable lint-category tokens;
/// tools/gsl_lint prints them and tests match on them).
enum class DiagPass : uint8_t {
  kStructure,  ///< undefined functions, loop/recursion restrictions
  kPhase,      ///< effect/phase-safety (writes or spawn in a gated phase)
  kBindings,   ///< table/field/view/channel/event name resolution
  kCost,       ///< static per-entity cost budget
};

const char* DiagPassName(DiagPass p);

/// One finding.
struct Diagnostic {
  Severity severity = Severity::kError;
  DiagPass pass = DiagPass::kStructure;
  SourceLoc loc;
  std::string message;
  /// Script name (Script::name, e.g. "hunt.gsl") for multi-pack runs.
  std::string origin;

  /// "hunt.gsl:12:3: error: [phase] spawn() is not available …"
  std::string ToString() const;
};

/// Collects diagnostics across all passes of a verification run.
/// Deterministic order: passes append findings in source order within a
/// pass, and passes run in a fixed sequence — tests pin that ordering.
class DiagnosticSink {
 public:
  void Report(Diagnostic d);

  /// Convenience used by the verifier passes.
  void Error(DiagPass pass, SourceLoc loc, std::string message);
  void Warn(DiagPass pass, SourceLoc loc, std::string message);

  const std::vector<Diagnostic>& diagnostics() const { return diags_; }
  size_t error_count() const { return errors_; }
  size_t warning_count() const { return diags_.size() - errors_; }
  bool has_errors() const { return errors_ > 0; }
  bool empty() const { return diags_.empty(); }
  void clear() {
    diags_.clear();
    errors_ = 0;
  }

  /// Stamps `origin` onto every diagnostic that doesn't carry one yet
  /// (the verifier calls this once per script).
  void SetOrigin(const std::string& origin);

  /// All findings, one rendered line each, '\n'-joined.
  std::string ToString() const;

  /// First error as a Status (ParseError, message matching the historical
  /// fail-fast `Analyze()` format "line %d: …"); OK when error-free.
  /// Back-compat seam for callers that still want a single Status verdict.
  Status FirstError() const;

 private:
  std::vector<Diagnostic> diags_;
  size_t errors_ = 0;
};

}  // namespace gamedb::script
