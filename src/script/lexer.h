#pragma once

/// \file lexer.h
/// GSL lexer. Comments run from '#' to end of line. String literals use
/// double quotes with \" \\ \n \t escapes.

#include <string_view>
#include <vector>

#include "common/status.h"
#include "script/token.h"

namespace gamedb::script {

/// Tokenizes `source`; the result always ends with a kEof token on success.
Result<std::vector<Token>> Lex(std::string_view source);

}  // namespace gamedb::script
