#pragma once

/// \file analyzer.h
/// Static analysis of GSL scripts, most importantly the *restriction levels*
/// the tutorial reports from industry: "some studios have taken drastic
/// measures — such as removing support for iteration and recursion from
/// their scripting languages — to keep their designers from producing
/// computationally expensive behavior" [10]. E10 measures what that buys.

#include <string>

#include "common/status.h"
#include "script/ast.h"

namespace gamedb::script {

/// What language power a script is allowed to use.
enum class Restriction : uint8_t {
  /// Everything: loops, recursion.
  kFull,
  /// Loops allowed; direct or mutual recursion rejected statically.
  kNoRecursion,
  /// Additionally rejects while/foreach — designers must express bulk
  /// operations through the declarative aggregate builtins (sum, count,
  /// nearest, ...), which the engine executes with indexes.
  kDeclarative,
};

const char* RestrictionName(Restriction r);

/// Result of analysis.
struct AnalysisReport {
  AstStats stats;
  /// Maximum static call-graph depth from any root (top level / handler).
  size_t max_call_depth = 0;
};

/// Validates `script` under `restriction`:
///  - calls to undefined script functions are rejected (builtins are
///    resolved at runtime and skipped here via the `is_builtin` predicate),
///  - kNoRecursion/kDeclarative reject call-graph cycles,
///  - kDeclarative rejects while/foreach statements,
///  - break/continue outside a loop are rejected.
Status Analyze(const Script& script, Restriction restriction,
               const std::function<bool(const std::string&)>& is_builtin,
               AnalysisReport* report = nullptr);

}  // namespace gamedb::script
