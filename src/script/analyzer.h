#pragma once

/// \file analyzer.h
/// Static analysis of GSL scripts. Two layers:
///
///  1. The historical *restriction levels* the tutorial reports from
///     industry: "some studios have taken drastic measures — such as
///     removing support for iteration and recursion from their scripting
///     languages — to keep their designers from producing computationally
///     expensive behavior" [10]. E10 measures what that buys. `Analyze()`
///     is the original fail-fast entry point for these checks.
///
///  2. A multi-pass load-time *verifier* (`Verify()`) that answers the
///     same "expensive/unsafe behavior" problem with analysis instead of
///     amputation. Passes, in fixed order (diagnostic order is part of the
///     testable surface):
///       structure — undefined functions, loop/recursion restriction
///                   levels, break/continue placement;
///       phase     — each function/handler's *transitive* effect set over
///                   the call graph (pure read, view read, emit, gated
///                   write, spawn, fire), checked against the execution
///                   phase the script will run in. A write or spawn that
///                   would only fail at runtime mid-tick inside ScriptHost
///                   (MutationPolicy::kReject, the in-phase spawn ban)
///                   becomes a load-time error with line/column;
///       bindings  — every component/field name in get/set/add/remove/...
///                   and every view name in view_* resolved against the
///                   reflection registry / ViewCatalog at load time, plus
///                   arity and comparison-operator literals;
///       cost      — worst-case per-entity cost of each entry point priced
///                   in the planner's calibrated cost units
///                   (planner/plan.h CostConstants) with an optional
///                   budget, so unbounded designer logic is rejected
///                   before it ever eats a frame.
///
/// All passes report into a DiagnosticSink (script/diagnostics.h): every
/// finding, source-located, not just the first.

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "script/ast.h"
#include "script/diagnostics.h"

namespace gamedb::planner {
struct CostConstants;
}  // namespace gamedb::planner

namespace gamedb::script {

/// What language power a script is allowed to use.
enum class Restriction : uint8_t {
  /// Everything: loops, recursion.
  kFull,
  /// Loops allowed; direct or mutual recursion rejected statically.
  kNoRecursion,
  /// Additionally rejects while/foreach — designers must express bulk
  /// operations through the declarative aggregate builtins (sum, count,
  /// nearest, ...), which the engine executes with indexes.
  kDeclarative,
};

const char* RestrictionName(Restriction r);

/// How a host treats verifier findings at load time.
enum class Strictness : uint8_t {
  /// Verifier does not run (historical behavior: structural analysis only).
  kOff,
  /// Verifier runs; findings are logged and retrievable, the load proceeds
  /// (existing packs keep loading — the default).
  kWarn,
  /// Error-severity findings reject the load.
  kStrict,
};

const char* StrictnessName(Strictness s);

/// Execution phase the verified script will run in — determines which
/// effects are legal. Mirrors bindings.h MutationPolicy.
enum class PhaseContext : uint8_t {
  /// Single-threaded interpreter, direct mutations (MutationPolicy::kDirect).
  kSequential,
  /// ScriptHost parallel query phase with gated-deferred writes
  /// (MutationPolicy::kDefer): spawn is banned (no id allocation before
  /// the apply phase); set/add/remove/destroy defer and are fine.
  kParallelDefer,
  /// Read-only parallel query phase (MutationPolicy::kReject): all world
  /// mutations and spawn are banned — scripts must emit() effects.
  kParallelReject,
};

const char* PhaseContextName(PhaseContext p);

/// Effect lattice: what a function/handler may do to the world, computed
/// transitively over the static call graph.
enum EffectBit : uint32_t {
  kEffectNone = 0,
  kEffectWorldRead = 1u << 0,   ///< get/has/is_alive/queries/aggregates
  kEffectViewRead = 1u << 1,    ///< view_count/contains/members/aggregate
  kEffectEmit = 1u << 2,        ///< emit() — the sanctioned parallel write
  kEffectGatedWrite = 1u << 3,  ///< set/add/remove/destroy (deferrable)
  kEffectSpawn = 1u << 4,       ///< spawn() — never deferrable
  kEffectFire = 1u << 5,        ///< fire() — trigger cascade
};

/// "pure" or e.g. "read|emit|write" — stable tokens for reports and tests.
std::string EffectSetName(uint32_t effects);

/// Field-granular access kind, per "Comp.field" key of an AccessSummary.
/// Writes distinguish *self* (the entry point's first parameter — the
/// entity the host ticks) from *foreign* (any other entity expression):
/// self-only writes touch disjoint rows across a parallel tick, foreign
/// writes may collide.
enum AccessBit : uint8_t {
  kAccessRead = 1u << 0,
  kAccessWriteSelf = 1u << 1,
  kAccessWriteForeign = 1u << 2,
};

/// Transitive, field-granular access summary of one entry point: which
/// table fields it may read or write (keys are "Comp.field", or "Comp.*"
/// when the field — but not the table — is data-dependent), plus a spatial
/// footprint (the largest radius literal reachable through within(); ⊤ when
/// a radius is computed at runtime). Computed over the static call graph
/// with parameter substitution, so a write through a helper's parameter
/// that is only ever bound to the entry's own entity still counts as self.
struct AccessSummary {
  /// "Comp.field" / "Comp.*" -> AccessBit mask. Ordered for deterministic
  /// rendering (golden tests pin AccessSummaryToString output).
  std::map<std::string, uint8_t> fields;
  /// Reads a table the analysis could not name (computed component name,
  /// or a recursion cycle — the ⊤ element of the read lattice).
  bool unknown_read = false;
  /// Writes a table/field the analysis could not name (computed component
  /// name, destroy(), or recursion — the ⊤ element of the write lattice).
  bool unknown_write = false;
  /// Changes table membership (add/remove/destroy), not just field values.
  bool structural_write = false;
  /// Largest statically-known within() radius reached (0 = no spatial
  /// queries); radius_unbounded when any reachable radius is computed.
  double radius = 0.0;
  bool radius_unbounded = false;
};

/// Stable one-line rendering, e.g.
///   "reads{Combat.attack, Health.hp} writes{Health.hp:self} radius 0"
/// Unknown (⊤) reads/writes render as "*"; write annotations are ":self",
/// ":foreign" or ":self+foreign"; a structural summary appends
/// " structural"; a data-dependent footprint renders "radius unbounded".
std::string AccessSummaryToString(const AccessSummary& s);

/// Name-resolution sources for the bindings pass. Every callback is
/// optional: a null std::function skips that family of checks (e.g.
/// gsl_lint run without a view catalog cannot validate view names).
struct SchemaCatalog {
  /// Does a component table with this name exist?
  std::function<bool(const std::string& comp)> has_component;
  /// Does `comp` (known to exist) have this field?
  std::function<bool(const std::string& comp, const std::string& field)>
      has_field;
  /// Is this a registered LiveView name?
  std::function<bool(const std::string& view)> has_view;
  /// Is this a wired effect channel? Unknown channels are *warnings* —
  /// contributions to them are silently dropped (and counted) at runtime.
  std::function<bool(const std::string& channel)> has_channel;
  /// Is this a handled trigger event? fire() with an event nothing handles
  /// is a *warning* (handlers may live in a pack loaded later). Hosts
  /// typically back this with the interpreter's cross-pack handler set.
  std::function<bool(const std::string& event)> has_event;

  /// Optional name enumerators for did-you-mean suggestions: when an
  /// unknown component/field/view/channel diagnostic fires and the matching
  /// enumerator is set, the closest name within edit distance 2 is appended
  /// to the message ("unknown component 'Helth'; did you mean 'Health'?").
  std::function<std::vector<std::string>()> component_names;
  std::function<std::vector<std::string>(const std::string& comp)>
      field_names;
  std::function<std::vector<std::string>()> view_names;
  std::function<std::vector<std::string>()> channel_names;
};

/// SchemaCatalog backed by the global reflection registry
/// (core/reflect.h): component and field names (and their did-you-mean
/// enumerators) resolve against TypeRegistry::Global(). View/channel
/// callbacks are left unset.
SchemaCatalog ReflectionSchema();

/// Static cost model: prices worst-case per-entity work in the planner's
/// calibrated cost units (CostConstants — one unit ≈ 1/7 of a reflective
/// row visit; see planner/plan.h). Load-time analysis cannot know table
/// sizes, so per-row work is priced against the assumed_* sizes below;
/// the point is a calibrated *bound*, not a prediction.
struct CostModelOptions {
  /// Query-cost constants; null uses a default-constructed CostConstants
  /// (the calibrated defaults).
  const planner::CostConstants* constants = nullptr;
  /// Rows a table scan / aggregate visits.
  double assumed_rows = 1024;
  /// Trip count for while loops and foreach over non-query iterables.
  double assumed_loop_iterations = 64;
  /// Members a view_members() snapshot returns (and foreach over it).
  double assumed_view_members = 256;
  /// One interpreted AST node (≈ a couple of units of interpretive
  /// overhead per node evaluated — the fuel metric, priced).
  double ast_node = 2.0;
  /// Any other native builtin call (math, list ops, get/set field access
  /// ≈ one reflective row visit).
  double builtin_call = 7.0;
};

/// Configuration for Verify().
struct VerifierOptions {
  Restriction restriction = Restriction::kFull;
  PhaseContext phase = PhaseContext::kSequential;
  /// Names resolvable as native builtins (Interpreter::IsBuiltin). Null:
  /// no names are builtins.
  std::function<bool(const std::string&)> is_builtin;
  /// Name sources for the bindings pass.
  SchemaCatalog schema;
  CostModelOptions cost;
  /// Per-entry-point worst-case cost budget in cost units; <= 0 disables
  /// budget enforcement (costs are still computed into the report).
  double cost_budget = 0.0;
  /// Require the script's top level to be free of emit/write/spawn/fire
  /// effects, transitively (ScriptHost runs the top level once per shard;
  /// side effects would be applied shard_count times — today a runtime
  /// rejection, with this a load-time one).
  bool top_level_must_be_pure = false;
};

/// Per-function (or handler) analysis facts.
struct FunctionFacts {
  /// Transitive EffectBit mask over the static call graph.
  uint32_t effects = 0;
  /// Worst-case per-invocation cost in cost units.
  double cost = 0.0;
  /// Cost is statically unbounded (recursion under Restriction::kFull).
  bool cost_unbounded = false;
  /// Transitive field-granular access summary (the dataflow pass).
  AccessSummary access;
};

/// One entry point (named function or event handler) of a verified script.
struct EntryFacts {
  std::string name;  ///< function name, or "on <event>" for handlers
  bool is_handler = false;
  SourceLoc loc;  ///< declaration site
  FunctionFacts facts;
};

/// Node counters + call-graph depth (the historical report).
struct AnalysisReport {
  AstStats stats;
  /// Maximum static call-graph depth from any root (top level / handler).
  size_t max_call_depth = 0;
};

/// One edge of the pack-level conflict graph: entries `a` and `b`
/// (indices into VerifyReport::entries, a < b) cannot safely run in the
/// same parallel phase, for `reason`.
struct ConflictEdge {
  size_t a = 0;
  size_t b = 0;
  std::string reason;
};

/// Result of a full Verify() run.
struct VerifyReport {
  AstStats stats;
  size_t max_call_depth = 0;
  /// Union of every entry point's transitive effects.
  uint32_t effects = 0;
  /// Entry points in declaration order.
  std::vector<EntryFacts> entries;
  /// Pack-level conflict graph over `entries` (a < b, ordered by (a, b)):
  /// two entries conflict iff one's writes overlap the other's reads or
  /// writes on the same table.field, or either has ⊤ writes, spawns, or
  /// fires trigger events. Edge-free pairs are provably safe to co-schedule.
  std::vector<ConflictEdge> conflicts;
  /// Most expensive entry point (ties: first in declaration order).
  double max_entry_cost = 0.0;
  std::string max_entry_name;
};

/// The pairwise conflict rule behind VerifyReport::conflicts, exposed for
/// schedulers. When it returns true and `reason` is non-null, *reason names
/// the first offending overlap.
bool AccessConflicts(const EntryFacts& a, const EntryFacts& b,
                     std::string* reason = nullptr);

/// Whether ScriptHost may run this entry with in-place writes during the
/// parallel query phase (MutationPolicy::kDirectChecked) and still be
/// bit-identical to the deferred replay. Requires: no spawn/fire, no
/// structural or ⊤ writes, every write self-targeted, write keys disjoint
/// from every read key, and no emit() alongside writes (channel applies
/// would observe different state). Read-only entries are trivially
/// eligible. On false, *reason (when non-null) explains the fallback.
bool DirectWriteEligible(const EntryFacts& entry,
                         std::string* reason = nullptr);

/// Runs every verifier pass over `script`, appending all findings to
/// `sink` (never fail-fast: the verdict is sink->has_errors()). The passes
/// run unconditionally; checks whose name sources are absent from
/// `options.schema` are skipped per call site. Returns the report.
VerifyReport Verify(const Script& script, const VerifierOptions& options,
                    DiagnosticSink* sink);

/// Historical fail-fast entry point — structure checks only (undefined
/// script functions, restriction-level loop/recursion bans, break/continue
/// placement), first finding returned as a ParseError Status. Kept for
/// standalone Interpreter loads; hosts run Verify().
Status Analyze(const Script& script, Restriction restriction,
               const std::function<bool(const std::string&)>& is_builtin,
               AnalysisReport* report = nullptr);

}  // namespace gamedb::script
