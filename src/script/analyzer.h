#pragma once

/// \file analyzer.h
/// Static analysis of GSL scripts. Two layers:
///
///  1. The historical *restriction levels* the tutorial reports from
///     industry: "some studios have taken drastic measures — such as
///     removing support for iteration and recursion from their scripting
///     languages — to keep their designers from producing computationally
///     expensive behavior" [10]. E10 measures what that buys. `Analyze()`
///     is the original fail-fast entry point for these checks.
///
///  2. A multi-pass load-time *verifier* (`Verify()`) that answers the
///     same "expensive/unsafe behavior" problem with analysis instead of
///     amputation. Passes, in fixed order (diagnostic order is part of the
///     testable surface):
///       structure — undefined functions, loop/recursion restriction
///                   levels, break/continue placement;
///       phase     — each function/handler's *transitive* effect set over
///                   the call graph (pure read, view read, emit, gated
///                   write, spawn, fire), checked against the execution
///                   phase the script will run in. A write or spawn that
///                   would only fail at runtime mid-tick inside ScriptHost
///                   (MutationPolicy::kReject, the in-phase spawn ban)
///                   becomes a load-time error with line/column;
///       bindings  — every component/field name in get/set/add/remove/...
///                   and every view name in view_* resolved against the
///                   reflection registry / ViewCatalog at load time, plus
///                   arity and comparison-operator literals;
///       cost      — worst-case per-entity cost of each entry point priced
///                   in the planner's calibrated cost units
///                   (planner/plan.h CostConstants) with an optional
///                   budget, so unbounded designer logic is rejected
///                   before it ever eats a frame.
///
/// All passes report into a DiagnosticSink (script/diagnostics.h): every
/// finding, source-located, not just the first.

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "script/ast.h"
#include "script/diagnostics.h"

namespace gamedb::planner {
struct CostConstants;
}  // namespace gamedb::planner

namespace gamedb::script {

/// What language power a script is allowed to use.
enum class Restriction : uint8_t {
  /// Everything: loops, recursion.
  kFull,
  /// Loops allowed; direct or mutual recursion rejected statically.
  kNoRecursion,
  /// Additionally rejects while/foreach — designers must express bulk
  /// operations through the declarative aggregate builtins (sum, count,
  /// nearest, ...), which the engine executes with indexes.
  kDeclarative,
};

const char* RestrictionName(Restriction r);

/// How a host treats verifier findings at load time.
enum class Strictness : uint8_t {
  /// Verifier does not run (historical behavior: structural analysis only).
  kOff,
  /// Verifier runs; findings are logged and retrievable, the load proceeds
  /// (existing packs keep loading — the default).
  kWarn,
  /// Error-severity findings reject the load.
  kStrict,
};

const char* StrictnessName(Strictness s);

/// Execution phase the verified script will run in — determines which
/// effects are legal. Mirrors bindings.h MutationPolicy.
enum class PhaseContext : uint8_t {
  /// Single-threaded interpreter, direct mutations (MutationPolicy::kDirect).
  kSequential,
  /// ScriptHost parallel query phase with gated-deferred writes
  /// (MutationPolicy::kDefer): spawn is banned (no id allocation before
  /// the apply phase); set/add/remove/destroy defer and are fine.
  kParallelDefer,
  /// Read-only parallel query phase (MutationPolicy::kReject): all world
  /// mutations and spawn are banned — scripts must emit() effects.
  kParallelReject,
};

const char* PhaseContextName(PhaseContext p);

/// Effect lattice: what a function/handler may do to the world, computed
/// transitively over the static call graph.
enum EffectBit : uint32_t {
  kEffectNone = 0,
  kEffectWorldRead = 1u << 0,   ///< get/has/is_alive/queries/aggregates
  kEffectViewRead = 1u << 1,    ///< view_count/contains/members/aggregate
  kEffectEmit = 1u << 2,        ///< emit() — the sanctioned parallel write
  kEffectGatedWrite = 1u << 3,  ///< set/add/remove/destroy (deferrable)
  kEffectSpawn = 1u << 4,       ///< spawn() — never deferrable
  kEffectFire = 1u << 5,        ///< fire() — trigger cascade
};

/// "pure" or e.g. "read|emit|write" — stable tokens for reports and tests.
std::string EffectSetName(uint32_t effects);

/// Name-resolution sources for the bindings pass. Every callback is
/// optional: a null std::function skips that family of checks (e.g.
/// gsl_lint run without a view catalog cannot validate view names).
struct SchemaCatalog {
  /// Does a component table with this name exist?
  std::function<bool(const std::string& comp)> has_component;
  /// Does `comp` (known to exist) have this field?
  std::function<bool(const std::string& comp, const std::string& field)>
      has_field;
  /// Is this a registered LiveView name?
  std::function<bool(const std::string& view)> has_view;
  /// Is this a wired effect channel? Unknown channels are *warnings* —
  /// contributions to them are silently dropped (and counted) at runtime.
  std::function<bool(const std::string& channel)> has_channel;
  /// Is this a handled trigger event? fire() with an event nothing handles
  /// is a *warning* (handlers may live in a pack loaded later). Hosts
  /// typically back this with the interpreter's cross-pack handler set.
  std::function<bool(const std::string& event)> has_event;
};

/// SchemaCatalog backed by the global reflection registry
/// (core/reflect.h): component and field names resolve against
/// TypeRegistry::Global(). View/channel callbacks are left unset.
SchemaCatalog ReflectionSchema();

/// Static cost model: prices worst-case per-entity work in the planner's
/// calibrated cost units (CostConstants — one unit ≈ 1/7 of a reflective
/// row visit; see planner/plan.h). Load-time analysis cannot know table
/// sizes, so per-row work is priced against the assumed_* sizes below;
/// the point is a calibrated *bound*, not a prediction.
struct CostModelOptions {
  /// Query-cost constants; null uses a default-constructed CostConstants
  /// (the calibrated defaults).
  const planner::CostConstants* constants = nullptr;
  /// Rows a table scan / aggregate visits.
  double assumed_rows = 1024;
  /// Trip count for while loops and foreach over non-query iterables.
  double assumed_loop_iterations = 64;
  /// Members a view_members() snapshot returns (and foreach over it).
  double assumed_view_members = 256;
  /// One interpreted AST node (≈ a couple of units of interpretive
  /// overhead per node evaluated — the fuel metric, priced).
  double ast_node = 2.0;
  /// Any other native builtin call (math, list ops, get/set field access
  /// ≈ one reflective row visit).
  double builtin_call = 7.0;
};

/// Configuration for Verify().
struct VerifierOptions {
  Restriction restriction = Restriction::kFull;
  PhaseContext phase = PhaseContext::kSequential;
  /// Names resolvable as native builtins (Interpreter::IsBuiltin). Null:
  /// no names are builtins.
  std::function<bool(const std::string&)> is_builtin;
  /// Name sources for the bindings pass.
  SchemaCatalog schema;
  CostModelOptions cost;
  /// Per-entry-point worst-case cost budget in cost units; <= 0 disables
  /// budget enforcement (costs are still computed into the report).
  double cost_budget = 0.0;
  /// Require the script's top level to be free of emit/write/spawn/fire
  /// effects, transitively (ScriptHost runs the top level once per shard;
  /// side effects would be applied shard_count times — today a runtime
  /// rejection, with this a load-time one).
  bool top_level_must_be_pure = false;
};

/// Per-function (or handler) analysis facts.
struct FunctionFacts {
  /// Transitive EffectBit mask over the static call graph.
  uint32_t effects = 0;
  /// Worst-case per-invocation cost in cost units.
  double cost = 0.0;
  /// Cost is statically unbounded (recursion under Restriction::kFull).
  bool cost_unbounded = false;
};

/// One entry point (named function or event handler) of a verified script.
struct EntryFacts {
  std::string name;  ///< function name, or "on <event>" for handlers
  bool is_handler = false;
  SourceLoc loc;  ///< declaration site
  FunctionFacts facts;
};

/// Node counters + call-graph depth (the historical report).
struct AnalysisReport {
  AstStats stats;
  /// Maximum static call-graph depth from any root (top level / handler).
  size_t max_call_depth = 0;
};

/// Result of a full Verify() run.
struct VerifyReport {
  AstStats stats;
  size_t max_call_depth = 0;
  /// Union of every entry point's transitive effects.
  uint32_t effects = 0;
  /// Entry points in declaration order.
  std::vector<EntryFacts> entries;
  /// Most expensive entry point (ties: first in declaration order).
  double max_entry_cost = 0.0;
  std::string max_entry_name;
};

/// Runs every verifier pass over `script`, appending all findings to
/// `sink` (never fail-fast: the verdict is sink->has_errors()). The passes
/// run unconditionally; checks whose name sources are absent from
/// `options.schema` are skipped per call site. Returns the report.
VerifyReport Verify(const Script& script, const VerifierOptions& options,
                    DiagnosticSink* sink);

/// Historical fail-fast entry point — structure checks only (undefined
/// script functions, restriction-level loop/recursion bans, break/continue
/// placement), first finding returned as a ParseError Status. Kept for
/// standalone Interpreter loads; hosts run Verify().
Status Analyze(const Script& script, Restriction restriction,
               const std::function<bool(const std::string&)>& is_builtin,
               AnalysisReport* report = nullptr);

}  // namespace gamedb::script
