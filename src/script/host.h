#pragma once

/// \file host.h
/// ScriptHost: executes a GSL behavior over a set of entities as a true
/// *parallel query phase* — the set-at-a-time script processing the paper's
/// follow-up work (Sowell et al., "From Declarative Languages to Declarative
/// Processing in Computer Games") argues scripts written in the state-effect
/// style admit: scripts "parallelize like joins".
///
/// One Interpreter per shard shares a single parsed Script; entities are
/// partitioned with ThreadPool::ParallelForChunks; each shard runs the
/// script's per-entity tick function read-only against tick-start state with
/// writes flowing only through ScriptEffects channels (emit) or DeferredOps
/// (gated set/add/remove/destroy). A deterministic apply phase then drains
/// channels in registration order and replays deferred ops in shard order.
///
/// Determinism contract: for a fixed entity order, running a tick with 1, 2
/// or 8 threads produces bit-identical world state. The pieces that make
/// this hold:
///   - chunking assigns contiguous ascending entity ranges to ascending
///     shard ids, so shard-order drains reproduce the single-thread order;
///   - the script-visible RNG is re-seeded per entity from
///     (base seed, world tick, entity id), so random() streams do not
///     depend on which shard an entity landed in;
///   - mutation builtins never touch the World during the query phase.
/// Scripts should treat interpreter globals as read-only during a parallel
/// tick: global writes are per-shard and their final values depend on the
/// partition (print() output is safe — it is drained in shard order).

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/state_effect.h"
#include "script/bindings.h"
#include "script/interpreter.h"
#include "telemetry/sink.h"

namespace gamedb::views {
class ViewCatalog;
}  // namespace gamedb::views

namespace gamedb::script {

/// Configuration for a ScriptHost.
struct ScriptHostOptions {
  /// Worker threads for the query phase (also the shard count). 1 gives a
  /// sequential but still phase-separated (and identically-behaving) host.
  size_t num_threads = 1;
  /// Base options for every per-shard interpreter. `rng_seed` acts as the
  /// base of the per-entity random() streams.
  InterpreterOptions interpreter;
  /// What the mutation builtins do during the query phase. kDirect is not
  /// allowed here — it is exactly the data race the host exists to prevent.
  /// kDirectChecked arms the analysis-gated fast path: ticks whose entry
  /// function the verifier's access-summary pass proved disjoint
  /// (DirectWriteEligible + no conflict-graph edge) apply set() writes in
  /// place during the query phase, skipping the DeferredOps value replay;
  /// every other tick silently falls back to kDefer behavior
  /// (ScriptTickStats::fallback_reason says why). Requires strictness !=
  /// kOff for the analysis to exist — otherwise every tick falls back.
  MutationPolicy mutations = MutationPolicy::kDefer;
  /// Optional cost-based query planner (planner/planner.h QueryPlanner):
  /// the query builtins of every shard plan through it, and RunTick calls
  /// its OnQuiescent() hook before the parallel query phase (the
  /// sequential point where it refreshes statistics). The hook's Execute
  /// must be thread-safe — QueryPlanner's is. nullptr keeps the
  /// hard-coded access paths (PlannerPolicy::kOff equivalent).
  QueryPlanHook* planner = nullptr;
  /// Optional live-view catalog (views/maintainer.h). RunTick calls its
  /// Maintain() at the sequential point before the parallel query phase —
  /// change logs flush, memberships update and subscriptions fire there, so
  /// shards then read a consistent tick-start snapshot of every view. The
  /// view read builtins (view_count / view_contains / view_members /
  /// view_aggregate) are bound on every shard interpreter.
  views::ViewCatalog* views = nullptr;
  /// Static-verifier strictness for Load (analyzer.h Verify): the verifier
  /// checks phase safety (writes/spawn against `mutations`), schema
  /// bindings (components/fields/views/channels against the reflection
  /// registry, the view catalog and the wired channels) and static cost.
  ///   kOff    — historical behavior: structural analysis only.
  ///   kWarn   — full verifier; phase/bindings/cost findings are logged and
  ///             kept readable via diagnostics(), the load proceeds
  ///             (structural errors still reject, as they always have).
  ///   kStrict — any error-severity finding rejects the load.
  Strictness strictness = Strictness::kWarn;
  /// Per-entry-point worst-case cost budget for the verifier's cost pass,
  /// in planner cost units (analyzer.h CostModelOptions); 0 disables
  /// budget enforcement.
  double script_cost_budget = 0.0;
  /// Optional telemetry hook (telemetry/sink.h). When a metrics registry is
  /// present the host folds its per-tick counters and phase timings into
  /// `script.*` instruments; when a tracer is present RunTick records the
  /// tick-phase spans (sequential point, per-shard query phase, apply).
  /// Both pointers are non-owning and must outlive the host.
  telemetry::TelemetrySink telemetry{};
};

/// Outcome of one scripted parallel tick.
struct ScriptTickStats {
  /// Entities offered to the query phase (dead ids are skipped silently).
  size_t entities = 0;
  /// tick-function invocations that returned an error. The tick keeps
  /// running (one bad entity must not wedge the shard); the error for the
  /// earliest entity in tick order is preserved in `first_error`.
  size_t script_errors = 0;
  Status first_error = Status::OK();
  /// Effect contributions emitted during the query phase, and how many were
  /// discarded because no apply function was registered for their channel.
  size_t effect_contributions = 0;
  size_t dropped_contributions = 0;
  /// Mutations deferred during the query phase, and how many no longer
  /// applied at replay time (e.g. set after destroy of the same entity).
  size_t deferred_ops = 0;
  size_t deferred_skipped = 0;
  /// Interpreter fuel burned across all shards this tick.
  uint64_t fuel_used = 0;
  /// MutationPolicy::kDirectChecked telemetry. `direct_checked` is true
  /// when this tick ran the in-place fast path; otherwise (under that
  /// policy) `fallback_reason` says why the tick used deferred replay.
  /// `direct_writes` counts set() calls applied in place,
  /// `direct_redirected` counts writes the gate bounced back to the
  /// deferred buffer (0 unless the analysis verdict was wrong — asserted
  /// by the differential tests).
  bool direct_checked = false;
  size_t direct_writes = 0;
  size_t direct_redirected = 0;
  /// Human-readable reason of the *last* fallback this tick (kept for
  /// display and for callers that only need one). `fallback_reasons` is the
  /// complete per-tick composition: reason text -> occurrence count, so a
  /// pack mixing eligible and ineligible entries reports every cause.
  std::string fallback_reason;
  std::map<std::string, uint64_t> fallback_reasons;
  /// Tick-phase wall-clock breakdown (steady_clock nanoseconds), the
  /// instrumentation the scenario load harness (tools/loadgen) aggregates
  /// into per-phase latency histograms. Timing only — never feeds back into
  /// execution, so determinism contracts are unaffected.
  uint64_t quiescent_ns = 0;    ///< planner OnQuiescent (stats refresh)
  uint64_t maintain_ns = 0;     ///< ViewCatalog::Maintain + subscriptions
  uint64_t query_phase_ns = 0;  ///< parallel script fan-out + join
  uint64_t apply_phase_ns = 0;  ///< channel drains + deferred-op replay
};

/// Parallel scripted query phase over a World. See file comment.
///
/// Typical flow:
///   ScriptHost host(&world, {.num_threads = 8});
///   host.OnChannel("damage", [&](EntityId e, double v) { ... });
///   host.Load(source);
///   each frame: world.AdvanceTick();
///               host.RunTickOver("tick", "ScriptRef");
class ScriptHost {
 public:
  explicit ScriptHost(World* world, ScriptHostOptions options = {});
  GAMEDB_DISALLOW_COPY(ScriptHost);

  /// Parses `source` once and loads the shared Script into every shard
  /// interpreter. The script's top level must not mutate the world or emit
  /// effects (it runs once per shard; duplicated side effects would be
  /// applied shard_count times).
  Status Load(std::string_view source, std::string_view origin = "<host>");

  /// Registers the apply function for an effect channel. The apply phase
  /// drains channels in registration order; contributions to channels with
  /// no registered apply are dropped (and counted per tick).
  void OnChannel(std::string name, std::function<void(EntityId, double)> apply);

  /// Runs `fn(entity)` for every live entity in `entities` (in order) as a
  /// parallel query phase, then applies effects and deferred mutations.
  /// Fails only on host-level problems (unknown function); per-entity
  /// script errors are reported through the stats.
  Result<ScriptTickStats> RunTick(const std::string& fn,
                                  const std::vector<EntityId>& entities);

  /// Convenience: RunTick over all entities carrying the named component
  /// (deterministic table order).
  Result<ScriptTickStats> RunTickOver(const std::string& fn,
                                      const std::string& component);

  /// Sets a global in every shard interpreter (host -> script parameters).
  void SetGlobal(const std::string& name, const Value& v);

  /// print() lines from all shards in tick order (shard order == entity
  /// order), clearing the per-shard buffers.
  std::vector<std::string> DrainOutput();

  size_t shard_count() const { return shards_.size(); }
  ScriptEffects& effects() { return effects_; }
  /// Per-shard interpreter access (tests, per-shard globals).
  Interpreter& interpreter(size_t shard) { return *shards_[shard]; }

  /// Verifier findings from the most recent Load (empty under
  /// Strictness::kOff, and cleared at the start of every Load).
  const DiagnosticSink& diagnostics() const { return diagnostics_; }
  /// Verifier report (effects, per-entry costs) from the most recent Load.
  const VerifyReport& verify_report() const { return verify_report_; }

  /// kDirectChecked tick counters since construction: ticks that ran the
  /// in-place fast path vs. ticks that fell back to deferred replay.
  uint64_t direct_ticks() const { return direct_ticks_; }
  uint64_t fallback_ticks() const { return fallback_ticks_; }

  /// Accumulated fallback composition since construction: reason text ->
  /// number of ticks that fell back for that reason (a tick with mixed
  /// entries under one RunTick contributes one count per occurrence).
  const std::map<std::string, uint64_t>& fallback_reason_counts() const {
    return fallback_reason_counts_;
  }

  /// Load-time direct-write verdict for entry function `fn`: (eligible,
  /// reason-when-not). Missing entries (never analyzed) report ineligible.
  std::pair<bool, std::string> DirectVerdict(const std::string& fn) const;

 private:
  /// Load-time analysis verdict for one entry point under kDirectChecked.
  struct DirectEntry {
    bool eligible = false;
    std::string reason;
    /// Component names the entry writes (for the per-tick observer check).
    std::vector<std::string> written_components;
  };

  /// Ensures every registered component type has a store before the query
  /// phase: reads through the bindings must not grow World's store map from
  /// pool threads.
  void PrewarmStores();

  World* world_;
  ScriptHostOptions options_;
  StateEffectExecutor exec_;
  ScriptEffects effects_;
  DeferredOps deferred_;
  std::vector<std::unique_ptr<Interpreter>> shards_;
  /// (channel name, apply fn) in registration order.
  std::vector<std::pair<std::string, std::function<void(EntityId, double)>>>
      channels_;
  DiagnosticSink diagnostics_;
  VerifyReport verify_report_;
  /// kDirectChecked state: the gate shards read during the query phase,
  /// and the per-entry verdicts computed at Load from the verify report.
  DirectWriteGate gate_;
  std::unordered_map<std::string, DirectEntry> direct_eligible_;
  uint64_t direct_ticks_ = 0;
  uint64_t fallback_ticks_ = 0;
  std::map<std::string, uint64_t> fallback_reason_counts_;

  /// Cached registry instruments (resolved once in the constructor; all
  /// nullptr when options_.telemetry.metrics is null).
  struct TickInstruments {
    telemetry::Counter* ticks = nullptr;
    telemetry::Counter* entities = nullptr;
    telemetry::Counter* script_errors = nullptr;
    telemetry::Counter* effect_contributions = nullptr;
    telemetry::Counter* dropped_contributions = nullptr;
    telemetry::Counter* deferred_ops = nullptr;
    telemetry::Counter* deferred_skipped = nullptr;
    telemetry::Counter* direct_ticks = nullptr;
    telemetry::Counter* fallback_ticks = nullptr;
    telemetry::Counter* direct_writes = nullptr;
    telemetry::Counter* direct_redirected = nullptr;
    telemetry::Histogram* quiescent_ns = nullptr;
    telemetry::Histogram* maintain_ns = nullptr;
    telemetry::Histogram* query_phase_ns = nullptr;
    telemetry::Histogram* apply_phase_ns = nullptr;
  };
  TickInstruments instruments_;
};

}  // namespace gamedb::script
