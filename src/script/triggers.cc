#include "script/triggers.h"

#include "common/logging.h"
#include "views/view.h"

namespace gamedb::script {

TriggerSystem::TriggerSystem(Interpreter* interp, TriggerOptions options)
    : interp_(interp), options_(options) {}

TriggerSystem::~TriggerSystem() {
  for (const Watch& w : watches_) {
    if (w.enter != kNoHandle) w.view->RemoveOnEnter(w.enter);
    if (w.exit != kNoHandle) w.view->RemoveOnExit(w.exit);
    if (w.update != kNoHandle) w.view->RemoveOnUpdate(w.update);
  }
}

void TriggerSystem::Fire(const std::string& event, std::vector<Value> args) {
  FireFrom(/*parent_depth=*/0, event, std::move(args));
}

void TriggerSystem::FireFrom(uint32_t parent_depth, const std::string& event,
                             std::vector<Value> args) {
  ++stats_.fired;
  uint32_t depth = parent_depth;
  if (depth >= options_.max_cascade_depth) {
    ++stats_.dropped_depth;
    return;
  }
  if (queue_.size() >= options_.max_queue) {
    ++stats_.dropped_queue;
    return;
  }
  queue_.push_back(Pending{event, std::move(args), depth});
}

Status TriggerSystem::Pump() {
  Status first_error = Status::OK();
  while (!queue_.empty()) {
    Pending p = std::move(queue_.front());
    queue_.pop_front();
    current_depth_ = p.depth + 1;  // children of this event run one deeper
    size_t completed = 0;
    Status st = interp_->FireEvent(p.event, p.args, &completed);
    // Count only invocations that actually completed: when a handler errors,
    // FireEvent stops, so crediting HandlerCount() here would overcount
    // (the header promises "handler invocations completed").
    stats_.handled += completed;
    if (!st.ok()) {
      ++stats_.errors;
      if (first_error.ok()) first_error = st;
    }
  }
  current_depth_ = 0;
  return first_error;
}

void TriggerSystem::WatchView(views::LiveView* view, std::string enter_event,
                              std::string exit_event,
                              std::string update_event) {
  // A watch wired to an event nothing handles fires into the void every
  // membership change — almost always a typo'd event name. Warn (not fail:
  // the handler pack may legitimately load after the watch is set up).
  for (const std::string& event : {enter_event, exit_event, update_event}) {
    if (!event.empty() && interp_->HandlerCount(event) == 0) {
      GAMEDB_LOG(kWarn) << "TriggerSystem::WatchView: no 'on " << event
                        << "' handler is loaded; view events will be "
                           "dropped until one is";
    }
  }
  Watch watch{view, kNoHandle, kNoHandle, kNoHandle};
  if (!enter_event.empty()) {
    watch.enter =
        view->OnEnter([this, event = std::move(enter_event)](EntityId e) {
          Fire(event, {Value(e)});
        });
  }
  if (!exit_event.empty()) {
    watch.exit =
        view->OnExit([this, event = std::move(exit_event)](EntityId e) {
          Fire(event, {Value(e)});
        });
  }
  if (!update_event.empty()) {
    watch.update =
        view->OnUpdate([this, event = std::move(update_event)](EntityId e) {
          Fire(event, {Value(e)});
        });
  }
  watches_.push_back(watch);
}

void TriggerSystem::InstallFireBuiltin() {
  interp_->RegisterBuiltin(
      "fire", [this](std::vector<Value>& args,
                     Interpreter&) -> Result<Value> {
        if (args.empty() || !args[0].IsString()) {
          return Status::InvalidArgument(
              "fire(\"event\", args...) requires an event name");
        }
        std::string event = args[0].AsString();
        std::vector<Value> rest(args.begin() + 1, args.end());
        FireFrom(current_depth_, event, std::move(rest));
        return Value::Nil();
      });
}

}  // namespace gamedb::script
