#include "script/triggers.h"

namespace gamedb::script {

TriggerSystem::TriggerSystem(Interpreter* interp, TriggerOptions options)
    : interp_(interp), options_(options) {}

void TriggerSystem::Fire(const std::string& event, std::vector<Value> args) {
  FireFrom(/*parent_depth=*/0, event, std::move(args));
}

void TriggerSystem::FireFrom(uint32_t parent_depth, const std::string& event,
                             std::vector<Value> args) {
  ++stats_.fired;
  uint32_t depth = parent_depth;
  if (depth >= options_.max_cascade_depth) {
    ++stats_.dropped_depth;
    return;
  }
  if (queue_.size() >= options_.max_queue) {
    ++stats_.dropped_queue;
    return;
  }
  queue_.push_back(Pending{event, std::move(args), depth});
}

Status TriggerSystem::Pump() {
  Status first_error = Status::OK();
  while (!queue_.empty()) {
    Pending p = std::move(queue_.front());
    queue_.pop_front();
    current_depth_ = p.depth + 1;  // children of this event run one deeper
    size_t completed = 0;
    Status st = interp_->FireEvent(p.event, p.args, &completed);
    // Count only invocations that actually completed: when a handler errors,
    // FireEvent stops, so crediting HandlerCount() here would overcount
    // (the header promises "handler invocations completed").
    stats_.handled += completed;
    if (!st.ok()) {
      ++stats_.errors;
      if (first_error.ok()) first_error = st;
    }
  }
  current_depth_ = 0;
  return first_error;
}

void TriggerSystem::InstallFireBuiltin() {
  interp_->RegisterBuiltin(
      "fire", [this](std::vector<Value>& args,
                     Interpreter&) -> Result<Value> {
        if (args.empty() || !args[0].IsString()) {
          return Status::InvalidArgument(
              "fire(\"event\", args...) requires an event name");
        }
        std::string event = args[0].AsString();
        std::vector<Value> rest(args.begin() + 1, args.end());
        FireFrom(current_depth_, event, std::move(rest));
        return Value::Nil();
      });
}

}  // namespace gamedb::script
