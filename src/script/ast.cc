#include "script/ast.h"

namespace gamedb::script {

namespace {

void CountExpr(const Expr& e, AstStats* stats) {
  ++stats->expr_nodes;
  for (const auto& a : e.args) CountExpr(*a, stats);
}

void CountStmt(const Stmt& s, AstStats* stats) {
  ++stats->stmt_nodes;
  if (s.kind == StmtKind::kWhile || s.kind == StmtKind::kForeach) {
    ++stats->loops;
  }
  if (s.expr) CountExpr(*s.expr, stats);
  for (const auto& b : s.body) CountStmt(*b, stats);
  for (const auto& b : s.else_body) CountStmt(*b, stats);
}

}  // namespace

AstStats CountNodes(const Script& script) {
  AstStats stats;
  for (const auto& s : script.top_level) CountStmt(*s, &stats);
  for (const auto& s : script.decls) {
    CountStmt(*s, &stats);
    if (s->kind == StmtKind::kFn) ++stats.functions;
    if (s->kind == StmtKind::kOn) ++stats.handlers;
  }
  return stats;
}

}  // namespace gamedb::script
