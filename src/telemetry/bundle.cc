#include "telemetry/bundle.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/json.h"

namespace gamedb::telemetry {

namespace {

std::string Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

/// Integral doubles (counter deltas, ns durations, percentile estimates)
/// print as integers; the rest keep six decimals.
std::string Num(double v) {
  char buf[64];
  if (std::isfinite(v) && v == std::floor(v) &&
      std::fabs(v) < 9.007199254740992e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else if (std::isfinite(v)) {
    std::snprintf(buf, sizeof(buf), "%.6f", v);
  } else {
    std::snprintf(buf, sizeof(buf), "0");
  }
  return buf;
}

std::string Num3(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", std::isfinite(v) ? v : 0.0);
  return buf;
}

/// Re-indents an embedded multi-line JSON document by `pad` spaces (the
/// first line is emitted at the insertion point, so it gets no pad).
std::string Indent(const std::string& doc, int pad) {
  std::string out;
  out.reserve(doc.size());
  const std::string padding(static_cast<size_t>(pad), ' ');
  bool at_line_start = false;
  for (char c : doc) {
    if (c == '\n') {
      out.push_back(c);
      at_line_start = true;
      continue;
    }
    if (at_line_start) {
      out += padding;
      at_line_start = false;
    }
    out.push_back(c);
  }
  while (!out.empty() && (out.back() == '\n' || out.back() == ' ')) {
    out.pop_back();
  }
  return out;
}

}  // namespace

std::string SloCheck::ToString() const {
  std::string out = name + ": measured " + Num3(measured_ms) +
                    " ms vs allowed " + Num3(target_ms) + " ms";
  out += violated ? " [VIOLATED]" : " [ok]";
  return out;
}

std::string RenderFlightRecorderBundle(const BundleInputs& inputs) {
  std::string out = "{\n";
  out += "  \"schema\": \"";
  out += kFlightRecSchema;
  out += "\",\n";

  out += "  \"trigger\": {\"reason\": \"" + Escape(inputs.reason) +
         "\", \"tick\": " + std::to_string(inputs.tick) +
         ", \"scenario\": \"" + Escape(inputs.scenario) + "\"},\n";

  out += "  \"rules\": [";
  bool first = true;
  if (inputs.watchdog != nullptr) {
    for (const RuleStatus& st : inputs.watchdog->status()) {
      out += first ? "\n" : ",\n";
      first = false;
      const HealthRule& r = st.rule;
      out += "    {\"name\": \"" + Escape(r.name) + "\"";
      out += ", \"rendered\": \"" + Escape(r.ToString()) + "\"";
      out += ", \"metric\": \"" + Escape(r.metric) + "\"";
      out += ", \"aggregation\": \"";
      out += AggregationName(r.aggregation);
      out += "\", \"window\": " + std::to_string(r.window);
      out += ", \"op\": \"";
      out += r.above ? "gt" : "lt";
      out += "\", \"threshold\": " + Num(r.threshold);
      out += ", \"severity\": \"";
      out += SeverityName(r.severity);
      out += "\", \"for_ticks\": " + std::to_string(r.for_ticks);
      out += ", \"clear_ticks\": " + std::to_string(r.clear_ticks);
      out += ", \"evaluated\": ";
      out += st.evaluated ? "true" : "false";
      out += ", \"tripped\": ";
      out += st.tripped ? "true" : "false";
      out += ", \"trip_count\": " + std::to_string(st.trip_count);
      out += ", \"tripped_tick\": " + std::to_string(st.tripped_tick);
      out += ", \"last_value\": " + Num(st.last_value);
      out += ", \"evaluations\": " + std::to_string(st.evaluations);
      out += "}";
    }
  }
  out += first ? "],\n" : "\n  ],\n";

  out += "  \"slo\": [";
  first = true;
  for (const SloCheck& check : inputs.slo_checks) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": \"" + Escape(check.name) + "\"";
    out += ", \"target_ms\": " + Num(check.target_ms);
    out += ", \"measured_ms\": " + Num(check.measured_ms);
    out += ", \"violated\": ";
    out += check.violated ? "true" : "false";
    out += ", \"rendered\": \"" + Escape(check.ToString()) + "\"}";
  }
  out += first ? "],\n" : "\n  ],\n";

  out += "  \"series\": [";
  first = true;
  if (inputs.recorder != nullptr) {
    for (const FlightRecorder::Series& s : inputs.recorder->Snapshot()) {
      out += first ? "\n" : ",\n";
      first = false;
      out += "    {\"name\": \"" + Escape(s.name) + "\"";
      out += ", \"kind\": \"";
      out += SeriesKindName(s.kind);
      out += "\", \"ticks\": [";
      for (size_t i = 0; i < s.ticks.size(); ++i) {
        if (i != 0) out += ", ";
        out += std::to_string(s.ticks[i]);
      }
      out += "], \"values\": [";
      for (size_t i = 0; i < s.values.size(); ++i) {
        if (i != 0) out += ", ";
        out += Num(s.values[i]);
      }
      out += "]}";
    }
  }
  out += first ? "],\n" : "\n  ],\n";

  if (inputs.metrics != nullptr) {
    out += "  \"metrics\": " +
           Indent(RenderTelemetryJson(*inputs.metrics), 2) + ",\n";
  } else {
    out += "  \"metrics\": null,\n";
  }

  out += "  \"trace\": [";
  first = true;
  if (inputs.tracer != nullptr) {
    std::vector<TraceEvent> events = inputs.tracer->Events();
    std::sort(events.begin(), events.end(),
              [](const TraceEvent& a, const TraceEvent& b) {
                if (a.ts_ns != b.ts_ns) return a.ts_ns < b.ts_ns;
                if (a.tid != b.tid) return a.tid < b.tid;
                return a.name < b.name;
              });
    for (const TraceEvent& e : events) {
      out += first ? "\n" : ",\n";
      first = false;
      out += "    {\"name\": \"" + Escape(e.name) + "\"";
      out += ", \"ts_ns\": " + std::to_string(e.ts_ns);
      out += ", \"dur_ns\": " + std::to_string(e.dur_ns);
      out += ", \"tid\": " + std::to_string(e.tid);
      out += "}";
    }
  }
  out += first ? "],\n" : "\n  ],\n";

  out += "  \"plans\": [";
  first = true;
  for (const std::string& plan : inputs.hot_plans) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + Escape(plan) + "\"";
  }
  out += first ? "]\n" : "\n  ]\n";

  out += "}\n";
  return out;
}

namespace {

Status Fail(const std::string& what) {
  return Status::SchemaMismatch("flightrec bundle schema violation: " + what);
}

bool IsString(const json::JsonValue* v) {
  return v != nullptr && v->Is(json::JsonValue::Kind::kString);
}
bool IsNumber(const json::JsonValue* v) {
  return v != nullptr && v->Is(json::JsonValue::Kind::kNumber);
}
bool IsBool(const json::JsonValue* v) {
  return v != nullptr && v->Is(json::JsonValue::Kind::kBool);
}

bool OneOf(const std::string& s, std::initializer_list<const char*> opts) {
  for (const char* o : opts) {
    if (s == o) return true;
  }
  return false;
}

Status ValidateRules(const json::JsonValue& rules) {
  if (!rules.Is(json::JsonValue::Kind::kArray)) {
    return Fail("rules is not an array");
  }
  for (size_t i = 0; i < rules.elements.size(); ++i) {
    const json::JsonValue& r = rules.elements[i];
    const std::string at = "rules[" + std::to_string(i) + "]";
    if (!r.Is(json::JsonValue::Kind::kObject)) {
      return Fail(at + " is not an object");
    }
    for (const char* f : {"name", "rendered", "metric"}) {
      if (!IsString(r.Find(f))) {
        return Fail(at + "." + f + " missing or not a string");
      }
    }
    const json::JsonValue* agg = r.Find("aggregation");
    if (!IsString(agg) ||
        !OneOf(agg->str, {"last", "mean", "min", "max", "sum"})) {
      return Fail(at + ".aggregation missing or not a known aggregation");
    }
    const json::JsonValue* op = r.Find("op");
    if (!IsString(op) || !OneOf(op->str, {"gt", "lt"})) {
      return Fail(at + ".op missing or not gt|lt");
    }
    const json::JsonValue* sev = r.Find("severity");
    if (!IsString(sev) || !OneOf(sev->str, {"info", "warning", "critical"})) {
      return Fail(at + ".severity missing or not a known severity");
    }
    for (const char* f : {"window", "threshold", "for_ticks", "clear_ticks",
                          "trip_count", "tripped_tick", "last_value",
                          "evaluations"}) {
      if (!IsNumber(r.Find(f))) {
        return Fail(at + "." + f + " missing or not a number");
      }
    }
    for (const char* f : {"evaluated", "tripped"}) {
      if (!IsBool(r.Find(f))) {
        return Fail(at + "." + f + " missing or not a bool");
      }
    }
    if (r.Find("window")->number < 1.0) {
      return Fail(at + ".window must be >= 1");
    }
  }
  return Status::OK();
}

Status ValidateSlo(const json::JsonValue& slo) {
  if (!slo.Is(json::JsonValue::Kind::kArray)) {
    return Fail("slo is not an array");
  }
  for (size_t i = 0; i < slo.elements.size(); ++i) {
    const json::JsonValue& c = slo.elements[i];
    const std::string at = "slo[" + std::to_string(i) + "]";
    if (!c.Is(json::JsonValue::Kind::kObject)) {
      return Fail(at + " is not an object");
    }
    if (!IsString(c.Find("name")) || !IsString(c.Find("rendered"))) {
      return Fail(at + ".name/rendered missing or not strings");
    }
    for (const char* f : {"target_ms", "measured_ms"}) {
      const json::JsonValue* v = c.Find(f);
      if (!IsNumber(v) || v->number < 0.0) {
        return Fail(at + "." + f + " missing or not a non-negative number");
      }
    }
    if (!IsBool(c.Find("violated"))) {
      return Fail(at + ".violated missing or not a bool");
    }
  }
  return Status::OK();
}

Status ValidateSeries(const json::JsonValue& series) {
  if (!series.Is(json::JsonValue::Kind::kArray)) {
    return Fail("series is not an array");
  }
  std::string prev;
  bool have_prev = false;
  for (size_t i = 0; i < series.elements.size(); ++i) {
    const json::JsonValue& s = series.elements[i];
    const std::string at = "series[" + std::to_string(i) + "]";
    if (!s.Is(json::JsonValue::Kind::kObject)) {
      return Fail(at + " is not an object");
    }
    const json::JsonValue* name = s.Find("name");
    if (!IsString(name)) return Fail(at + ".name missing or not a string");
    if (have_prev && !(prev < name->str)) {
      return Fail("series not sorted by name at '" + name->str + "'");
    }
    prev = name->str;
    have_prev = true;
    const json::JsonValue* kind = s.Find("kind");
    if (!IsString(kind) ||
        !OneOf(kind->str, {"counter_delta", "gauge", "hist_p50", "hist_p99",
                           "hist_p999", "hist_count"})) {
      return Fail(at + ".kind missing or not a known series kind");
    }
    const json::JsonValue* ticks = s.Find("ticks");
    const json::JsonValue* values = s.Find("values");
    if (ticks == nullptr || !ticks->Is(json::JsonValue::Kind::kArray)) {
      return Fail(at + ".ticks missing or not an array");
    }
    if (values == nullptr || !values->Is(json::JsonValue::Kind::kArray)) {
      return Fail(at + ".values missing or not an array");
    }
    if (ticks->elements.size() != values->elements.size()) {
      return Fail(at + " ticks/values length mismatch");
    }
    if (ticks->elements.empty()) {
      return Fail(at + " is empty (never-sampled series must be omitted)");
    }
    double prev_tick = -1.0;
    for (const json::JsonValue& t : ticks->elements) {
      if (!t.Is(json::JsonValue::Kind::kNumber) || t.number < 0.0) {
        return Fail(at + ".ticks entry not a non-negative number");
      }
      if (t.number < prev_tick) {
        return Fail(at + ".ticks not non-decreasing");
      }
      prev_tick = t.number;
    }
    for (const json::JsonValue& v : values->elements) {
      if (!v.Is(json::JsonValue::Kind::kNumber)) {
        return Fail(at + ".values entry not a number");
      }
    }
  }
  return Status::OK();
}

Status ValidateMetrics(const json::JsonValue& metrics) {
  if (metrics.Is(json::JsonValue::Kind::kNull)) return Status::OK();
  if (!metrics.Is(json::JsonValue::Kind::kObject)) {
    return Fail("metrics is not an object or null");
  }
  const json::JsonValue* schema = metrics.Find("schema");
  if (!IsString(schema) || schema->str != kTelemetrySchema) {
    return Fail("metrics.schema missing or not '" +
                std::string(kTelemetrySchema) + "'");
  }
  for (const char* section : {"counters", "gauges", "histograms"}) {
    const json::JsonValue* obj = metrics.Find(section);
    if (obj == nullptr || !obj->Is(json::JsonValue::Kind::kObject)) {
      return Fail(std::string("metrics.") + section + " is not an object");
    }
  }
  return Status::OK();
}

Status ValidateTrace(const json::JsonValue& trace) {
  if (!trace.Is(json::JsonValue::Kind::kArray)) {
    return Fail("trace is not an array");
  }
  for (size_t i = 0; i < trace.elements.size(); ++i) {
    const json::JsonValue& e = trace.elements[i];
    const std::string at = "trace[" + std::to_string(i) + "]";
    if (!e.Is(json::JsonValue::Kind::kObject)) {
      return Fail(at + " is not an object");
    }
    if (!IsString(e.Find("name"))) {
      return Fail(at + ".name missing or not a string");
    }
    for (const char* f : {"ts_ns", "dur_ns", "tid"}) {
      const json::JsonValue* v = e.Find(f);
      if (!IsNumber(v) || v->number < 0.0) {
        return Fail(at + "." + f + " missing or not a non-negative number");
      }
    }
  }
  return Status::OK();
}

}  // namespace

Status ValidateFlightRecorderBundle(const std::string& doc) {
  Result<json::JsonValue> parsed = json::ParseJson(doc);
  if (!parsed.ok()) return parsed.status();
  const json::JsonValue& root = *parsed;
  if (!root.Is(json::JsonValue::Kind::kObject)) {
    return Fail("root is not an object");
  }
  const json::JsonValue* schema = root.Find("schema");
  if (!IsString(schema)) return Fail("missing schema tag");
  if (schema->str != kFlightRecSchema) {
    return Fail("unexpected schema tag '" + schema->str + "'");
  }

  const json::JsonValue* trigger = root.Find("trigger");
  if (trigger == nullptr || !trigger->Is(json::JsonValue::Kind::kObject)) {
    return Fail("trigger is not an object");
  }
  if (!IsString(trigger->Find("reason"))) {
    return Fail("trigger.reason missing or not a string");
  }
  if (!IsString(trigger->Find("scenario"))) {
    return Fail("trigger.scenario missing or not a string");
  }
  const json::JsonValue* tick = trigger->Find("tick");
  if (!IsNumber(tick) || tick->number < 0.0) {
    return Fail("trigger.tick missing or not a non-negative number");
  }

  const json::JsonValue* rules = root.Find("rules");
  if (rules == nullptr) return Fail("missing rules section");
  GAMEDB_RETURN_NOT_OK(ValidateRules(*rules));

  const json::JsonValue* slo = root.Find("slo");
  if (slo == nullptr) return Fail("missing slo section");
  GAMEDB_RETURN_NOT_OK(ValidateSlo(*slo));

  const json::JsonValue* series = root.Find("series");
  if (series == nullptr) return Fail("missing series section");
  GAMEDB_RETURN_NOT_OK(ValidateSeries(*series));

  const json::JsonValue* metrics = root.Find("metrics");
  if (metrics == nullptr) return Fail("missing metrics section");
  GAMEDB_RETURN_NOT_OK(ValidateMetrics(*metrics));

  const json::JsonValue* trace = root.Find("trace");
  if (trace == nullptr) return Fail("missing trace section");
  GAMEDB_RETURN_NOT_OK(ValidateTrace(*trace));

  const json::JsonValue* plans = root.Find("plans");
  if (plans == nullptr || !plans->Is(json::JsonValue::Kind::kArray)) {
    return Fail("plans is not an array");
  }
  for (size_t i = 0; i < plans->elements.size(); ++i) {
    if (!plans->elements[i].Is(json::JsonValue::Kind::kString)) {
      return Fail("plans[" + std::to_string(i) + "] is not a string");
    }
  }
  return Status::OK();
}

}  // namespace gamedb::telemetry
