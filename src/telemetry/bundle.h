#pragma once

/// \file bundle.h
/// The diagnostic bundle a tripped watchdog (or an SLO breach / recovery
/// failure in loadgen) dumps to disk: one schema-tagged
/// `gamedb.flightrec.v1` JSON document holding everything needed to debug
/// the incident after the fact — the flight recorder's last-N-ticks time
/// series, every watchdog rule with its live status, the structured SLO
/// checks, a full metrics snapshot (embedded `gamedb.telemetry.v1`
/// object), the current tick's trace spans, and EXPLAIN ANALYZE text for
/// the hottest cached plans.
///
/// Same artifact discipline as `gamedb.telemetry.v1` / `gamedb.e15.v1`:
/// deterministic key order, and an independent validating parser
/// (ValidateFlightRecorderBundle) built on common/json — writers never
/// check their own homework. tools/telereport renders bundles for humans.

#include <string>
#include <vector>

#include "common/status.h"
#include "telemetry/registry.h"
#include "telemetry/timeseries.h"
#include "telemetry/trace.h"
#include "telemetry/watchdog.h"

namespace gamedb::telemetry {

inline constexpr const char* kFlightRecSchema = "gamedb.flightrec.v1";

/// One evaluated SLO threshold, reported with evidence (measured vs
/// allowed) rather than just an exit code.
struct SloCheck {
  std::string name;  ///< "tick_p50", "tick_p99", "tick_p999"
  double target_ms = 0.0;
  double measured_ms = 0.0;
  bool violated = false;

  /// "tick_p99: measured 7.412 ms vs allowed 5.000 ms [VIOLATED]".
  std::string ToString() const;
};

/// Everything a bundle captures. All pointers are non-owning and may be
/// null — absent subsystems render as empty sections, so a bundle is
/// always well-formed no matter how much telemetry was wired up.
struct BundleInputs {
  std::string reason;    ///< "watchdog", "slo_breach", "recovery_failure"
  uint64_t tick = 0;     ///< tick at which the bundle was cut
  std::string scenario;  ///< loadgen scenario / tool name
  const FlightRecorder* recorder = nullptr;
  const Watchdog* watchdog = nullptr;
  const MetricsRegistry* metrics = nullptr;
  const Tracer* tracer = nullptr;
  std::vector<SloCheck> slo_checks;
  /// EXPLAIN ANALYZE text of the hottest cached plans, hottest first.
  std::vector<std::string> hot_plans;
};

/// Renders the `gamedb.flightrec.v1` document. Deterministic for given
/// inputs: sections in fixed order, series sorted by name.
std::string RenderFlightRecorderBundle(const BundleInputs& inputs);

/// Independent validating parser: parses the raw bytes with common/json
/// and checks the full section structure (schema tag, trigger, rules,
/// slo, series tick/value parallelism and tick monotonicity, embedded
/// metrics snapshot, trace spans, plans). Returns SchemaMismatch with a
/// pinpointing message on the first violation.
Status ValidateFlightRecorderBundle(const std::string& doc);

}  // namespace gamedb::telemetry
