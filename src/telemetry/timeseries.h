#pragma once

/// \file timeseries.h
/// The flight recorder: per-tick sampling of every MetricsRegistry
/// instrument into fixed-capacity ring buffers, so the last N ticks of
/// engine health are always in memory and can be dumped as a
/// `gamedb.flightrec.v1` diagnostic bundle (bundle.h) when something trips.
///
/// PR 9's registry answers "what are the totals right now"; the recorder
/// answers "what happened over the last N ticks" — the continuous signal
/// the watchdog (watchdog.h) evaluates and the admission-control /
/// load-shedding ROADMAP items will read from.
///
/// Series derived from one registry instrument:
///   counter `c`    -> series `c`        per-tick delta (not the absolute)
///   gauge `g`      -> series `g:gauge`  sampled level
///   histogram `h`  -> series `h:p50` / `h:p99` / `h:p999`  percentile
///                     estimates over the cumulative distribution, and
///                     `h:count` — per-tick delta of the sample count
///
/// Cost discipline (same as registry.h): a disabled Sample() is one relaxed
/// atomic load and a branch — safe to leave wired in the tick loop (the e16
/// bench prices it). An enabled Sample() reads instrument values through
/// the same relaxed atomics the hot paths write (lock-free against
/// concurrently-recording script shards; the registry's instrument-map
/// mutex is taken once, uncontended at the sequential point). Memory is
/// bounded by `capacity * max_series` ring slots — the recorder never grows
/// past its configuration no matter how long the shard runs.
///
/// Thread safety: Sample() is meant for the sequential point of the tick.
/// Snapshot()/Find() take the recorder mutex and may run concurrently with
/// Sample(); instrument *recording* (Counter::Add etc. from parallel
/// shards) is always safe against a concurrent Sample().

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/registry.h"

namespace gamedb::telemetry {

/// How one recorder series was derived from its registry instrument.
enum class SeriesKind : uint8_t {
  kCounterDelta,  ///< per-tick increase of a counter
  kGauge,         ///< sampled gauge level
  kHistP50,       ///< histogram p50 estimate (cumulative distribution)
  kHistP99,       ///< histogram p99 estimate
  kHistP999,      ///< histogram p99.9 estimate
  kHistCount,     ///< per-tick delta of a histogram's sample count
};

/// Stable wire name ("counter_delta", "gauge", "hist_p50", ...).
const char* SeriesKindName(SeriesKind kind);

class FlightRecorder {
 public:
  struct Options {
    /// Ticks retained per series (the ring length).
    size_t capacity = 256;
    /// Upper bound on distinct series; instruments past it are dropped and
    /// counted in dropped_series() instead of growing memory.
    size_t max_series = 512;
  };

  /// One series unrolled oldest -> newest for rendering. `ticks` and
  /// `values` are always the same length.
  struct Series {
    std::string name;
    SeriesKind kind = SeriesKind::kCounterDelta;
    std::vector<uint64_t> ticks;
    std::vector<double> values;
  };

  /// `registry` is non-owning and must outlive the recorder. The
  /// single-argument form uses default Options (two overloads rather than
  /// a defaulted argument: GCC rejects `Options opts = {}` on a nested
  /// aggregate with member initializers inside its enclosing class).
  explicit FlightRecorder(const MetricsRegistry* registry);
  FlightRecorder(const MetricsRegistry* registry, Options opts);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Enabling primes every counter/histogram-count baseline from the
  /// current registry values, so the first Sample() records deltas since
  /// *enable*, not since process start. Disabling freezes the rings.
  void SetEnabled(bool on);
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Samples every registry instrument at `tick` (the sequential point).
  /// Disabled: one relaxed load + branch, nothing else.
  void Sample(uint64_t tick);

  size_t capacity() const { return opts_.capacity; }
  /// Sample() calls recorded while enabled.
  uint64_t samples() const;
  size_t series_count() const;
  /// Instruments that could not be tracked because max_series was reached.
  uint64_t dropped_series() const;

  /// Every series, sorted by name, unrolled oldest -> newest.
  std::vector<Series> Snapshot() const;
  /// One series by its derived name (e.g. "script.ticks",
  /// "script.phase.query_ns:p99"). False when never sampled.
  bool Find(const std::string& name, Series* out) const;

 private:
  struct Ring {
    SeriesKind kind = SeriesKind::kCounterDelta;
    std::vector<uint64_t> ticks;
    std::vector<double> values;
    size_t head = 0;  ///< next write slot
    size_t size = 0;
    /// Last absolute value, for the delta kinds.
    double baseline = 0.0;
    bool baseline_set = false;
  };

  void Push(const std::string& name, SeriesKind kind, uint64_t tick,
            double value, bool is_delta);
  void Unroll(const std::string& name, const Ring& ring, Series* out) const;

  const MetricsRegistry* registry_;
  Options opts_;
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::map<std::string, Ring> series_;
  uint64_t samples_ = 0;
  uint64_t dropped_series_ = 0;
};

}  // namespace gamedb::telemetry
