#include "telemetry/registry.h"

#include <algorithm>
#include <cstdio>

#include "common/json.h"

namespace gamedb::telemetry {

namespace {

/// %.3f, matching the loadgen report's number formatting.
std::string Num3(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

std::string EscapeJsonString(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

uint64_t Histogram::Percentile(double p) const {
  // Relaxed snapshot of the buckets; rank logic mirrors
  // LatencyHistogram::Percentile over the identical bucket layout.
  std::array<uint64_t, kBuckets> snap;
  uint64_t total = 0;
  for (int i = 0; i < kBuckets; ++i) {
    snap[static_cast<size_t>(i)] =
        buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
    total += snap[static_cast<size_t>(i)];
  }
  if (total == 0) return 0;
  uint64_t lo = min_.load(std::memory_order_relaxed);
  uint64_t hi = max_.load(std::memory_order_relaxed);
  if (p >= 100.0) return hi;
  double want = p / 100.0 * static_cast<double>(total);
  auto target = static_cast<uint64_t>(want);
  if (static_cast<double>(target) < want || target == 0) ++target;
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += snap[static_cast<size_t>(i)];
    if (seen >= target) {
      return std::max(lo,
                      std::min(hi, LatencyHistogram::BucketUpperEdge(i)));
    }
  }
  return hi;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(name, std::unique_ptr<Counter>(new Counter(&enabled_)))
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::unique_ptr<Gauge>(new Gauge(&enabled_)))
             .first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(name,
                      std::unique_ptr<Histogram>(new Histogram(&enabled_)))
             .first;
  }
  return it->second.get();
}

std::vector<std::pair<std::string, uint64_t>> MetricsRegistry::CounterValues()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c->value());
  return out;
}

std::vector<std::pair<std::string, int64_t>> MetricsRegistry::GaugeValues()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, int64_t>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g->value());
  return out;
}

std::vector<HistogramSummary> MetricsRegistry::HistogramValues() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<HistogramSummary> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSummary s;
    s.name = name;
    s.count = h->count();
    s.min = h->min();
    s.max = h->max();
    s.mean = h->mean();
    s.p50 = h->Percentile(50.0);
    s.p99 = h->Percentile(99.0);
    s.p999 = h->Percentile(99.9);
    out.push_back(std::move(s));
  }
  return out;
}

std::string RenderTelemetryJson(const MetricsRegistry& registry) {
  // Hand-rolled, deterministic key order: schema, counters, gauges,
  // histograms; instrument names sorted (std::map iteration order).
  std::string out = "{\n";
  out += "  \"schema\": \"";
  out += kTelemetrySchema;
  out += "\",\n";

  out += "  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : registry.CounterValues()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + EscapeJsonString(name) +
           "\": " + std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : registry.GaugeValues()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + EscapeJsonString(name) +
           "\": " + std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const HistogramSummary& h : registry.HistogramValues()) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + EscapeJsonString(h.name) + "\": {";
    out += "\"count\": " + std::to_string(h.count);
    out += ", \"min\": " + std::to_string(h.min);
    out += ", \"max\": " + std::to_string(h.max);
    out += ", \"mean\": " + Num3(h.mean);
    out += ", \"p50\": " + std::to_string(h.p50);
    out += ", \"p99\": " + std::to_string(h.p99);
    out += ", \"p999\": " + std::to_string(h.p999);
    out += "}";
  }
  out += first ? "}\n" : "\n  }\n";

  out += "}\n";
  return out;
}

namespace {

Status SchemaFail(const std::string& what) {
  return Status::SchemaMismatch("telemetry json schema violation: " + what);
}

bool IsNonNegativeNumber(const json::JsonValue& v) {
  return v.Is(json::JsonValue::Kind::kNumber) && v.number >= 0.0;
}

}  // namespace

Status ValidateTelemetryJson(const std::string& doc) {
  Result<json::JsonValue> parsed = json::ParseJson(doc);
  if (!parsed.ok()) return parsed.status();
  const json::JsonValue& root = *parsed;
  if (!root.Is(json::JsonValue::Kind::kObject)) {
    return SchemaFail("root is not an object");
  }
  const json::JsonValue* schema = root.Find("schema");
  if (schema == nullptr || !schema->Is(json::JsonValue::Kind::kString)) {
    return SchemaFail("missing schema tag");
  }
  if (schema->str != kTelemetrySchema) {
    return SchemaFail("unexpected schema tag '" + schema->str + "'");
  }
  for (const char* section : {"counters", "gauges"}) {
    const json::JsonValue* obj = root.Find(section);
    if (obj == nullptr || !obj->Is(json::JsonValue::Kind::kObject)) {
      return SchemaFail(std::string(section) + " is not an object");
    }
    std::string prev;
    bool have_prev = false;
    for (const auto& [name, value] : obj->members) {
      if (!value.Is(json::JsonValue::Kind::kNumber)) {
        return SchemaFail(std::string(section) + "." + name +
                          " is not a number");
      }
      if (have_prev && !(prev < name)) {
        return SchemaFail(std::string(section) + " keys not sorted at '" +
                          name + "'");
      }
      prev = name;
      have_prev = true;
    }
  }
  const json::JsonValue* hists = root.Find("histograms");
  if (hists == nullptr || !hists->Is(json::JsonValue::Kind::kObject)) {
    return SchemaFail("histograms is not an object");
  }
  std::string prev;
  bool have_prev = false;
  for (const auto& [name, h] : hists->members) {
    if (!h.Is(json::JsonValue::Kind::kObject)) {
      return SchemaFail("histograms." + name + " is not an object");
    }
    if (have_prev && !(prev < name)) {
      return SchemaFail("histogram keys not sorted at '" + name + "'");
    }
    prev = name;
    have_prev = true;
    for (const char* field :
         {"count", "min", "max", "mean", "p50", "p99", "p999"}) {
      const json::JsonValue* v = h.Find(field);
      if (v == nullptr || !IsNonNegativeNumber(*v)) {
        return SchemaFail("histograms." + name + "." + field +
                          " missing or not a non-negative number");
      }
    }
    const json::JsonValue* count = h.Find("count");
    const json::JsonValue* minv = h.Find("min");
    const json::JsonValue* maxv = h.Find("max");
    if (count->number > 0.0 && minv->number > maxv->number) {
      return SchemaFail("histograms." + name + " has min > max");
    }
  }
  return Status::OK();
}

}  // namespace gamedb::telemetry
