#pragma once

/// \file watchdog.h
/// Declarative engine-health rules over the flight recorder's time series,
/// evaluated at the sequential point of every tick. A rule names a recorder
/// series (timeseries.h naming: "script.ticks", "loadgen.tick_ns:p99", ...),
/// an aggregation over the last N ticks, a threshold, and a severity; a
/// tripped rule is the signal that makes loadgen dump a
/// `gamedb.flightrec.v1` diagnostic bundle (bundle.h) — and, per the
/// ROADMAP, the input the future admission-control / load-shedding policies
/// will act on instead of missing ticks.
///
/// Hysteresis: a rule trips only after `for_ticks` consecutive breaching
/// evaluations and clears only after `clear_ticks` consecutive healthy
/// ones, so a single noisy tick neither fires a bundle nor silences an
/// ongoing incident.
///
/// Thread safety: none — Evaluate/AddRule/Status run from sequential code,
/// like the planner's OnQuiescent.

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "telemetry/timeseries.h"

namespace gamedb::telemetry {

enum class Aggregation : uint8_t { kLast, kMean, kMin, kMax, kSum };
enum class Severity : uint8_t { kInfo, kWarning, kCritical };

/// Stable wire names ("last"/"mean"/... and "info"/"warning"/"critical").
const char* AggregationName(Aggregation agg);
const char* SeverityName(Severity severity);

/// One declarative health rule.
struct HealthRule {
  std::string name;    ///< unique handle ("slo_tick_p99", "fsync_stall")
  std::string metric;  ///< recorder series name
  Aggregation aggregation = Aggregation::kMean;
  /// Aggregate over the last `window` recorded ticks (>= 1; fewer points
  /// are aggregated as-is while the recorder warms up).
  size_t window = 1;
  /// true: breach when aggregate > threshold; false: breach when <.
  bool above = true;
  double threshold = 0.0;
  Severity severity = Severity::kWarning;
  size_t for_ticks = 1;    ///< consecutive breaches required to trip
  size_t clear_ticks = 1;  ///< consecutive healthy evaluations to clear

  /// One-line human rendering:
  /// "name: mean(metric, 30) > 5000000 [critical, for 3, clear 5]".
  std::string ToString() const;
};

/// Parses the declarative rule spec the loadgen `--watch` flag takes:
///
///   NAME,METRIC,AGG,WINDOW,OP,THRESHOLD[,SEVERITY[,FOR,CLEAR]]
///
/// AGG in {last,mean,min,max,sum}; OP in {gt,lt}; SEVERITY in
/// {info,warning,critical} (default warning); FOR/CLEAR default 1.
/// Example: "tick_p99,loadgen.tick_ns:p99,last,1,gt,5000000,critical".
Result<HealthRule> ParseHealthRule(const std::string& spec);

/// Live evaluation state of one rule.
struct RuleStatus {
  HealthRule rule;
  /// The series existed at the most recent evaluation (a rule over a
  /// series that never appears is configured-but-silent, not tripped).
  bool evaluated = false;
  bool tripped = false;
  uint64_t trip_count = 0;    ///< lifetime trips
  uint64_t tripped_tick = 0;  ///< tick of the most recent trip
  double last_value = 0.0;    ///< most recent aggregate
  uint64_t evaluations = 0;
};

class Watchdog {
 public:
  /// `recorder` is non-owning and must outlive the watchdog.
  explicit Watchdog(const FlightRecorder* recorder) : recorder_(recorder) {}
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  void AddRule(HealthRule rule);
  size_t rule_count() const { return rules_.size(); }

  /// Evaluates every rule against the recorder's current rings (call after
  /// FlightRecorder::Sample for the tick). Returns the names of rules that
  /// transitioned to tripped at this evaluation.
  std::vector<std::string> Evaluate(uint64_t tick);

  bool AnyTripped() const;
  /// Highest severity among currently-tripped rules (kInfo when none).
  Severity MaxTrippedSeverity() const;
  uint64_t total_trips() const { return total_trips_; }
  const std::vector<RuleStatus>& status() const { return rules_; }

 private:
  struct Streaks {
    size_t breach = 0;
    size_t clear = 0;
  };

  const FlightRecorder* recorder_;
  std::vector<RuleStatus> rules_;
  std::vector<Streaks> streaks_;
  uint64_t total_trips_ = 0;
};

}  // namespace gamedb::telemetry
