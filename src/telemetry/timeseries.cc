#include "telemetry/timeseries.h"

#include <algorithm>

namespace gamedb::telemetry {

const char* SeriesKindName(SeriesKind kind) {
  switch (kind) {
    case SeriesKind::kCounterDelta: return "counter_delta";
    case SeriesKind::kGauge: return "gauge";
    case SeriesKind::kHistP50: return "hist_p50";
    case SeriesKind::kHistP99: return "hist_p99";
    case SeriesKind::kHistP999: return "hist_p999";
    case SeriesKind::kHistCount: return "hist_count";
  }
  return "unknown";
}

FlightRecorder::FlightRecorder(const MetricsRegistry* registry)
    : FlightRecorder(registry, Options()) {}

FlightRecorder::FlightRecorder(const MetricsRegistry* registry, Options opts)
    : registry_(registry), opts_(opts) {
  if (opts_.capacity == 0) opts_.capacity = 1;
}

void FlightRecorder::SetEnabled(bool on) {
  if (on && registry_ != nullptr) {
    // Prime delta baselines so the first sample reports the increase since
    // enable, not the instrument's lifetime total.
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, value] : registry_->CounterValues()) {
      auto it = series_.find(name);
      if (it != series_.end()) {
        it->second.baseline = static_cast<double>(value);
        it->second.baseline_set = true;
      } else if (series_.size() < opts_.max_series) {
        Ring ring;
        ring.kind = SeriesKind::kCounterDelta;
        ring.baseline = static_cast<double>(value);
        ring.baseline_set = true;
        series_.emplace(name, std::move(ring));
      }
    }
    for (const HistogramSummary& h : registry_->HistogramValues()) {
      const std::string key = h.name + ":count";
      auto it = series_.find(key);
      if (it != series_.end()) {
        it->second.baseline = static_cast<double>(h.count);
        it->second.baseline_set = true;
      } else if (series_.size() < opts_.max_series) {
        Ring ring;
        ring.kind = SeriesKind::kHistCount;
        ring.baseline = static_cast<double>(h.count);
        ring.baseline_set = true;
        series_.emplace(key, std::move(ring));
      }
    }
  }
  enabled_.store(on, std::memory_order_relaxed);
}

void FlightRecorder::Push(const std::string& name, SeriesKind kind,
                          uint64_t tick, double value, bool is_delta) {
  auto it = series_.find(name);
  if (it == series_.end()) {
    if (series_.size() >= opts_.max_series) {
      ++dropped_series_;
      return;
    }
    Ring ring;
    ring.kind = kind;
    it = series_.emplace(name, std::move(ring)).first;
  }
  Ring& ring = it->second;
  double recorded = value;
  if (is_delta) {
    // An instrument first seen mid-flight has no baseline: its first delta
    // is everything accumulated since the recorder was enabled (the
    // instrument did not exist at prime time, so that IS the delta).
    recorded = ring.baseline_set ? value - ring.baseline : value;
    ring.baseline = value;
    ring.baseline_set = true;
  }
  if (ring.ticks.size() < opts_.capacity) {
    ring.ticks.resize(opts_.capacity, 0);
    ring.values.resize(opts_.capacity, 0.0);
  }
  ring.ticks[ring.head] = tick;
  ring.values[ring.head] = recorded;
  ring.head = (ring.head + 1) % opts_.capacity;
  ring.size = std::min(ring.size + 1, opts_.capacity);
}

void FlightRecorder::Sample(uint64_t tick) {
  if (!kCompiledIn) return;
  if (!enabled_.load(std::memory_order_relaxed)) return;
  if (registry_ == nullptr) return;
  // Instrument values are read through the same relaxed atomics the hot
  // paths write — safe against shards recording concurrently. The recorder
  // mutex only orders Sample against Snapshot/Find readers.
  std::lock_guard<std::mutex> lock(mu_);
  ++samples_;
  for (const auto& [name, value] : registry_->CounterValues()) {
    Push(name, SeriesKind::kCounterDelta, tick, static_cast<double>(value),
         /*is_delta=*/true);
  }
  for (const auto& [name, value] : registry_->GaugeValues()) {
    Push(name + ":gauge", SeriesKind::kGauge, tick,
         static_cast<double>(value), /*is_delta=*/false);
  }
  for (const HistogramSummary& h : registry_->HistogramValues()) {
    Push(h.name + ":p50", SeriesKind::kHistP50, tick,
         static_cast<double>(h.p50), /*is_delta=*/false);
    Push(h.name + ":p99", SeriesKind::kHistP99, tick,
         static_cast<double>(h.p99), /*is_delta=*/false);
    Push(h.name + ":p999", SeriesKind::kHistP999, tick,
         static_cast<double>(h.p999), /*is_delta=*/false);
    Push(h.name + ":count", SeriesKind::kHistCount, tick,
         static_cast<double>(h.count), /*is_delta=*/true);
  }
}

uint64_t FlightRecorder::samples() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_;
}

size_t FlightRecorder::series_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return series_.size();
}

uint64_t FlightRecorder::dropped_series() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_series_;
}

void FlightRecorder::Unroll(const std::string& name, const Ring& ring,
                            Series* out) const {
  out->name = name;
  out->kind = ring.kind;
  out->ticks.clear();
  out->values.clear();
  out->ticks.reserve(ring.size);
  out->values.reserve(ring.size);
  const size_t start =
      (ring.head + opts_.capacity - ring.size) % opts_.capacity;
  for (size_t i = 0; i < ring.size; ++i) {
    const size_t idx = (start + i) % opts_.capacity;
    out->ticks.push_back(ring.ticks[idx]);
    out->values.push_back(ring.values[idx]);
  }
}

std::vector<FlightRecorder::Series> FlightRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Series> out;
  out.reserve(series_.size());
  for (const auto& [name, ring] : series_) {
    if (ring.size == 0) continue;  // primed at enable but never sampled
    Series s;
    Unroll(name, ring, &s);
    out.push_back(std::move(s));
  }
  return out;
}

bool FlightRecorder::Find(const std::string& name, Series* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = series_.find(name);
  if (it == series_.end() || it->second.size == 0) return false;
  Unroll(name, it->second, out);
  return true;
}

}  // namespace gamedb::telemetry
