#pragma once

/// \file registry.h
/// Named metrics registry: counters, gauges and log-linear histograms that
/// every subsystem can bump from its hot path without locks.
///
/// Design constraints, in order:
///   1. Near-zero cost when telemetry is off. Every instrument holds a
///      pointer to its registry's enabled flag; a disabled Add() is one
///      relaxed load and a branch. A compile-time kill-switch
///      (-DGAMEDB_TELEMETRY_DISABLED) removes even that.
///   2. Lock-free recording. Instruments are plain relaxed atomics; the
///      registry mutex is only taken on FindOrCreate (cold: subsystems
///      cache the returned pointers at construction) and on snapshot.
///   3. One deterministic JSON dump. RenderTelemetryJson emits the
///      schema-tagged `gamedb.telemetry.v1` document with keys in sorted
///      order; ValidateTelemetryJson re-reads it through the independent
///      common/json parser (same discipline as the `gamedb.e15.v1` report).
///
/// Instrument pointers returned by the registry are stable for the
/// registry's lifetime and safe to use from any thread.

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/percentile.h"
#include "common/status.h"

namespace gamedb::telemetry {

/// Compile-time kill-switch: with -DGAMEDB_TELEMETRY_DISABLED every record
/// call compiles to nothing (the instruments still exist so call sites need
/// no #ifdefs).
#ifdef GAMEDB_TELEMETRY_DISABLED
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

class MetricsRegistry;

/// Monotonically increasing event count.
class Counter {
 public:
  void Add(uint64_t n) {
    if (!kCompiledIn) return;
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  explicit Counter(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  const std::atomic<bool>* enabled_;
  std::atomic<uint64_t> value_{0};
};

/// Last-writer-wins instantaneous level (can go down, can be negative).
class Gauge {
 public:
  void Set(int64_t v) {
    if (!kCompiledIn) return;
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.store(v, std::memory_order_relaxed);
  }
  void Add(int64_t delta) {
    if (!kCompiledIn) return;
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  explicit Gauge(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  const std::atomic<bool>* enabled_;
  std::atomic<int64_t> value_{0};
};

/// Lock-free log-linear histogram sharing LatencyHistogram's exact bucket
/// layout (32 sub-buckets per octave, values < 32 exact), so quantiles have
/// the same <=3.2% relative error and captures merge bucket-wise.
///
/// Record is wait-free per bucket; min/max use CAS loops. Quantile reads
/// take a relaxed snapshot of the buckets — exact once writers are
/// quiescent, a consistent-enough estimate while they are not.
class Histogram {
 public:
  static constexpr int kBuckets = LatencyHistogram::kBuckets;

  void Record(uint64_t v) {
    if (!kCompiledIn) return;
    if (!enabled_->load(std::memory_order_relaxed)) return;
    buckets_[static_cast<size_t>(LatencyHistogram::BucketFor(v))].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    uint64_t seen = min_.load(std::memory_order_relaxed);
    while (v < seen &&
           !min_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
    seen = max_.load(std::memory_order_relaxed);
    while (v > seen &&
           !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t min() const {
    return count() == 0 ? 0 : min_.load(std::memory_order_relaxed);
  }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  double mean() const {
    uint64_t c = count();
    return c == 0 ? 0.0
                  : static_cast<double>(sum_.load(std::memory_order_relaxed)) /
                        static_cast<double>(c);
  }

  /// Value at percentile `p` in (0, 100], same contract as
  /// LatencyHistogram::Percentile. 0 when empty.
  uint64_t Percentile(double p) const;

 private:
  friend class MetricsRegistry;
  explicit Histogram(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  const std::atomic<bool>* enabled_;
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

/// Point-in-time summary of one histogram, as exported in the snapshot.
struct HistogramSummary {
  std::string name;
  uint64_t count = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  double mean = 0.0;
  uint64_t p50 = 0;
  uint64_t p99 = 0;
  uint64_t p999 = 0;
};

/// Owns named instruments. Find-or-create is mutex-guarded (cold path);
/// recording through the returned pointers is lock-free.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Runtime kill-switch. Disabled (the default) means every instrument of
  /// this registry records nothing — values are frozen where they were.
  void SetEnabled(bool on) {
    enabled_.store(on && kCompiledIn, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Find-or-create by name. The pointer stays valid for the registry's
  /// lifetime; call once per instrument and cache the result.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Sorted-by-name snapshots of every registered instrument.
  std::vector<std::pair<std::string, uint64_t>> CounterValues() const;
  std::vector<std::pair<std::string, int64_t>> GaugeValues() const;
  std::vector<HistogramSummary> HistogramValues() const;

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Schema tag of the metrics snapshot document.
inline constexpr char kTelemetrySchema[] = "gamedb.telemetry.v1";

/// Renders the registry as the `gamedb.telemetry.v1` JSON snapshot:
/// counters/gauges/histograms objects with keys in sorted order.
std::string RenderTelemetryJson(const MetricsRegistry& registry);

/// Independent validator: parses `doc` with the shared common/json reader
/// and checks the `gamedb.telemetry.v1` structure. Never consults the
/// emitter above.
Status ValidateTelemetryJson(const std::string& doc);

}  // namespace gamedb::telemetry
