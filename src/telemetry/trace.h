#pragma once

/// \file trace.h
/// Tick-phase span tracing. Subsystems record complete ("ph":"X") spans —
/// the sequential point, view maintenance, the per-shard parallel script
/// phase, apply/drain, WAL append/fsync, checkpoint, sync emission — and
/// RenderChromeTraceJson exports them as Chrome trace_event JSON that loads
/// directly in chrome://tracing (or Perfetto).
///
/// Track (tid) convention: 0 is the main/sequential thread; parallel script
/// shards record on tid = shard index + 1 so the fan-out is visible as
/// parallel tracks.
///
/// Recording takes a mutex per span end. Spans bound whole tick phases
/// (microseconds to milliseconds), not per-entity work, so contention is
/// nil; a disabled tracer costs one relaxed load per would-be span.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/percentile.h"
#include "common/status.h"

namespace gamedb::telemetry {

/// One completed span, timestamps in nanoseconds from MonotonicNanos().
struct TraceEvent {
  std::string name;
  uint64_t ts_ns = 0;
  uint64_t dur_ns = 0;
  uint32_t tid = 0;
};

/// Collects spans. Thread-safe; disabled by default.
class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void SetEnabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  void RecordSpan(std::string name, uint64_t ts_ns, uint64_t dur_ns,
                  uint32_t tid) {
    if (!enabled()) return;
    std::lock_guard<std::mutex> lock(mu_);
    events_.push_back(TraceEvent{std::move(name), ts_ns, dur_ns, tid});
  }

  std::vector<TraceEvent> Events() const {
    std::lock_guard<std::mutex> lock(mu_);
    return events_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return events_.size();
  }

  void Clear() {
    std::lock_guard<std::mutex> lock(mu_);
    events_.clear();
  }

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

/// RAII span: stamps the start on construction, records on destruction.
/// A null or disabled tracer makes both ends near-free (no timestamp taken).
class TraceSpan {
 public:
  TraceSpan(Tracer* tracer, const char* name, uint32_t tid = 0)
      : tracer_(tracer != nullptr && tracer->enabled() ? tracer : nullptr),
        name_(name),
        tid_(tid),
        start_ns_(tracer_ != nullptr ? MonotonicNanos() : 0) {}

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  ~TraceSpan() {
    if (tracer_ != nullptr) {
      tracer_->RecordSpan(name_, start_ns_, MonotonicNanos() - start_ns_,
                          tid_);
    }
  }

 private:
  Tracer* tracer_;
  const char* name_;
  uint32_t tid_;
  uint64_t start_ns_;
};

/// Renders every recorded span as Chrome trace_event JSON
/// ({"traceEvents":[{"name","cat","ph":"X","ts","dur","pid","tid"},...]}).
/// Timestamps are microseconds with 3 decimals, sorted by (ts, tid, name)
/// so the document is deterministic for a given set of spans.
std::string RenderChromeTraceJson(const Tracer& tracer);

/// Independent validator for the Chrome trace document: parses with the
/// shared common/json reader and checks every event is a well-formed
/// complete span.
Status ValidateChromeTraceJson(const std::string& doc);

}  // namespace gamedb::telemetry
