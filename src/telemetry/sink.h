#pragma once

/// \file sink.h
/// TelemetrySink: the one hook subsystem options structs carry. Both
/// pointers are optional and non-owning — the caller (loadgen's Driver, a
/// game server) owns the registry/tracer and must keep them alive for the
/// subsystem's lifetime. A default-constructed sink is inert: every
/// instrument lookup is skipped and spans cost one null check.

#include "telemetry/registry.h"
#include "telemetry/trace.h"

namespace gamedb::telemetry {

struct TelemetrySink {
  MetricsRegistry* metrics = nullptr;
  Tracer* tracer = nullptr;

  bool active() const { return metrics != nullptr || tracer != nullptr; }
};

}  // namespace gamedb::telemetry
