#pragma once

/// \file sink.h
/// TelemetrySink: the one hook subsystem options structs carry. All
/// pointers are optional and non-owning — the caller (loadgen's Driver, a
/// game server) owns the registry/tracer/recorder/watchdog and must keep
/// them alive for the subsystem's lifetime. A default-constructed sink is
/// inert: every instrument lookup is skipped and spans cost one null
/// check.
///
/// `recorder` and `watchdog` (PR 10) are the continuous-observability
/// pair: subsystems never call them directly — only the sequential point
/// of the tick samples the recorder and evaluates the watchdog — but
/// carrying them on the sink lets any layer that owns the tick loop
/// (loadgen's Driver, scripted_world) reach them without new plumbing.

#include "telemetry/registry.h"
#include "telemetry/timeseries.h"
#include "telemetry/trace.h"
#include "telemetry/watchdog.h"

namespace gamedb::telemetry {

struct TelemetrySink {
  MetricsRegistry* metrics = nullptr;
  Tracer* tracer = nullptr;
  /// Per-tick flight recorder; sampled at the sequential point only.
  FlightRecorder* recorder = nullptr;
  /// Health rules over the recorder; evaluated right after Sample().
  Watchdog* watchdog = nullptr;

  bool active() const { return metrics != nullptr || tracer != nullptr; }

  /// One call for the sequential point: sample the recorder, evaluate the
  /// watchdog, return rules that newly tripped at this tick.
  std::vector<std::string> TickHeartbeat(uint64_t tick) {
    if (recorder != nullptr) recorder->Sample(tick);
    if (watchdog != nullptr) return watchdog->Evaluate(tick);
    return {};
  }
};

}  // namespace gamedb::telemetry
