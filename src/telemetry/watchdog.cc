#include "telemetry/watchdog.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

namespace gamedb::telemetry {

const char* AggregationName(Aggregation agg) {
  switch (agg) {
    case Aggregation::kLast: return "last";
    case Aggregation::kMean: return "mean";
    case Aggregation::kMin: return "min";
    case Aggregation::kMax: return "max";
    case Aggregation::kSum: return "sum";
  }
  return "unknown";
}

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kCritical: return "critical";
  }
  return "unknown";
}

std::string HealthRule::ToString() const {
  std::ostringstream os;
  // Integral thresholds (ns targets easily exceed 1e7) print in full
  // rather than decaying to scientific notation.
  os << name << ": " << AggregationName(aggregation) << "(" << metric << ", "
     << window << ") " << (above ? ">" : "<") << " ";
  if (threshold == static_cast<double>(static_cast<long long>(threshold))) {
    os << static_cast<long long>(threshold);
  } else {
    os << threshold;
  }
  os << " [" << SeverityName(severity);
  if (for_ticks > 1) os << ", for " << for_ticks;
  if (clear_ticks > 1) os << ", clear " << clear_ticks;
  os << "]";
  return os.str();
}

namespace {

std::vector<std::string> SplitCommas(const std::string& spec) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : spec) {
    if (c == ',') {
      out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  out.push_back(cur);
  return out;
}

Status ParseSize(const std::string& text, const char* what, size_t* out) {
  if (text.empty()) return Status::ParseError(std::string(what) + " is empty");
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') {
    return Status::ParseError(std::string("bad ") + what + " '" + text + "'");
  }
  if (v == 0) return Status::ParseError(std::string(what) + " must be >= 1");
  *out = static_cast<size_t>(v);
  return Status::OK();
}

}  // namespace

Result<HealthRule> ParseHealthRule(const std::string& spec) {
  const std::vector<std::string> parts = SplitCommas(spec);
  if (parts.size() < 6 || parts.size() == 8 || parts.size() > 9) {
    return Status::ParseError(
        "watch rule needs NAME,METRIC,AGG,WINDOW,OP,THRESHOLD"
        "[,SEVERITY[,FOR,CLEAR]]: '" +
        spec + "'");
  }
  HealthRule rule;
  rule.name = parts[0];
  rule.metric = parts[1];
  if (rule.name.empty()) return Status::ParseError("rule name is empty");
  if (rule.metric.empty()) return Status::ParseError("rule metric is empty");

  const std::string& agg = parts[2];
  if (agg == "last") {
    rule.aggregation = Aggregation::kLast;
  } else if (agg == "mean") {
    rule.aggregation = Aggregation::kMean;
  } else if (agg == "min") {
    rule.aggregation = Aggregation::kMin;
  } else if (agg == "max") {
    rule.aggregation = Aggregation::kMax;
  } else if (agg == "sum") {
    rule.aggregation = Aggregation::kSum;
  } else {
    return Status::ParseError("bad aggregation '" + agg +
                              "' (want last|mean|min|max|sum)");
  }

  GAMEDB_RETURN_NOT_OK(ParseSize(parts[3], "window", &rule.window));

  const std::string& op = parts[4];
  if (op == "gt") {
    rule.above = true;
  } else if (op == "lt") {
    rule.above = false;
  } else {
    return Status::ParseError("bad op '" + op + "' (want gt|lt)");
  }

  {
    const std::string& text = parts[5];
    char* end = nullptr;
    rule.threshold = std::strtod(text.c_str(), &end);
    if (text.empty() || end == nullptr || *end != '\0') {
      return Status::ParseError("bad threshold '" + text + "'");
    }
  }

  if (parts.size() >= 7) {
    const std::string& sev = parts[6];
    if (sev == "info") {
      rule.severity = Severity::kInfo;
    } else if (sev == "warning") {
      rule.severity = Severity::kWarning;
    } else if (sev == "critical") {
      rule.severity = Severity::kCritical;
    } else {
      return Status::ParseError("bad severity '" + sev +
                                "' (want info|warning|critical)");
    }
  }
  if (parts.size() == 9) {
    GAMEDB_RETURN_NOT_OK(ParseSize(parts[7], "for_ticks", &rule.for_ticks));
    GAMEDB_RETURN_NOT_OK(ParseSize(parts[8], "clear_ticks",
                                   &rule.clear_ticks));
  }
  return rule;
}

void Watchdog::AddRule(HealthRule rule) {
  if (rule.window == 0) rule.window = 1;
  if (rule.for_ticks == 0) rule.for_ticks = 1;
  if (rule.clear_ticks == 0) rule.clear_ticks = 1;
  RuleStatus status;
  status.rule = std::move(rule);
  rules_.push_back(std::move(status));
  streaks_.emplace_back();
}

std::vector<std::string> Watchdog::Evaluate(uint64_t tick) {
  std::vector<std::string> newly_tripped;
  if (recorder_ == nullptr) return newly_tripped;
  FlightRecorder::Series series;
  for (size_t i = 0; i < rules_.size(); ++i) {
    RuleStatus& st = rules_[i];
    Streaks& streak = streaks_[i];
    if (!recorder_->Find(st.rule.metric, &series)) {
      // Series absent (instrument never recorded, or recorder cold): the
      // rule is configured-but-silent; streaks hold so a brief gap in the
      // series neither trips nor clears anything.
      st.evaluated = false;
      continue;
    }
    const size_t n = std::min(st.rule.window, series.values.size());
    const size_t start = series.values.size() - n;
    double value = series.values[start];
    switch (st.rule.aggregation) {
      case Aggregation::kLast:
        value = series.values.back();
        break;
      case Aggregation::kMean: {
        double sum = 0.0;
        for (size_t j = start; j < series.values.size(); ++j) {
          sum += series.values[j];
        }
        value = sum / static_cast<double>(n);
        break;
      }
      case Aggregation::kMin:
        for (size_t j = start + 1; j < series.values.size(); ++j) {
          value = std::min(value, series.values[j]);
        }
        break;
      case Aggregation::kMax:
        for (size_t j = start + 1; j < series.values.size(); ++j) {
          value = std::max(value, series.values[j]);
        }
        break;
      case Aggregation::kSum: {
        double sum = 0.0;
        for (size_t j = start; j < series.values.size(); ++j) {
          sum += series.values[j];
        }
        value = sum;
        break;
      }
    }
    st.evaluated = true;
    st.last_value = value;
    ++st.evaluations;
    const bool breach =
        st.rule.above ? value > st.rule.threshold : value < st.rule.threshold;
    if (breach) {
      ++streak.breach;
      streak.clear = 0;
      if (!st.tripped && streak.breach >= st.rule.for_ticks) {
        st.tripped = true;
        ++st.trip_count;
        ++total_trips_;
        st.tripped_tick = tick;
        newly_tripped.push_back(st.rule.name);
      }
    } else {
      streak.breach = 0;
      if (st.tripped) {
        ++streak.clear;
        if (streak.clear >= st.rule.clear_ticks) {
          st.tripped = false;
          streak.clear = 0;
        }
      }
    }
  }
  return newly_tripped;
}

bool Watchdog::AnyTripped() const {
  for (const RuleStatus& st : rules_) {
    if (st.tripped) return true;
  }
  return false;
}

Severity Watchdog::MaxTrippedSeverity() const {
  Severity max = Severity::kInfo;
  for (const RuleStatus& st : rules_) {
    if (st.tripped && st.rule.severity > max) max = st.rule.severity;
  }
  return max;
}

}  // namespace gamedb::telemetry
