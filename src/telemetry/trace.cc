#include "telemetry/trace.h"

#include <algorithm>
#include <cstdio>
#include <tuple>

#include "common/json.h"

namespace gamedb::telemetry {

namespace {

/// Nanoseconds -> microseconds with 3 decimals (chrome ts/dur unit).
std::string Micros(uint64_t ns) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  return buf;
}

std::string EscapeJsonString(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

std::string RenderChromeTraceJson(const Tracer& tracer) {
  std::vector<TraceEvent> events = tracer.Events();
  // Parallel shards append in completion order; sort so the same set of
  // spans always renders the same bytes.
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return std::tie(a.ts_ns, a.tid, a.name) <
                     std::tie(b.ts_ns, b.tid, b.name);
            });
  std::string out = "{\n";
  out += "  \"displayTimeUnit\": \"ms\",\n";
  out += "  \"traceEvents\": [";
  bool first = true;
  for (const TraceEvent& e : events) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"name\": \"" + EscapeJsonString(e.name) + "\"";
    out += ", \"cat\": \"gamedb\"";
    out += ", \"ph\": \"X\"";
    out += ", \"ts\": " + Micros(e.ts_ns);
    out += ", \"dur\": " + Micros(e.dur_ns);
    out += ", \"pid\": 1";
    out += ", \"tid\": " + std::to_string(e.tid);
    out += "}";
  }
  out += first ? "]\n" : "\n  ]\n";
  out += "}\n";
  return out;
}

namespace {

Status SchemaFail(const std::string& what) {
  return Status::SchemaMismatch("trace json schema violation: " + what);
}

}  // namespace

Status ValidateChromeTraceJson(const std::string& doc) {
  Result<json::JsonValue> parsed = json::ParseJson(doc);
  if (!parsed.ok()) return parsed.status();
  const json::JsonValue& root = *parsed;
  if (!root.Is(json::JsonValue::Kind::kObject)) {
    return SchemaFail("root is not an object");
  }
  const json::JsonValue* events = root.Find("traceEvents");
  if (events == nullptr || !events->Is(json::JsonValue::Kind::kArray)) {
    return SchemaFail("traceEvents missing or not an array");
  }
  size_t i = 0;
  for (const json::JsonValue& e : events->elements) {
    const std::string at = "traceEvents[" + std::to_string(i) + "]";
    ++i;
    if (!e.Is(json::JsonValue::Kind::kObject)) {
      return SchemaFail(at + " is not an object");
    }
    const json::JsonValue* name = e.Find("name");
    if (name == nullptr || !name->Is(json::JsonValue::Kind::kString) ||
        name->str.empty()) {
      return SchemaFail(at + ".name missing or empty");
    }
    const json::JsonValue* ph = e.Find("ph");
    if (ph == nullptr || !ph->Is(json::JsonValue::Kind::kString) ||
        ph->str != "X") {
      return SchemaFail(at + ".ph is not a complete-event \"X\"");
    }
    for (const char* field : {"ts", "dur", "pid", "tid"}) {
      const json::JsonValue* v = e.Find(field);
      if (v == nullptr || !v->Is(json::JsonValue::Kind::kNumber) ||
          v->number < 0.0) {
        return SchemaFail(at + "." + field +
                          " missing or not a non-negative number");
      }
    }
  }
  return Status::OK();
}

}  // namespace gamedb::telemetry
