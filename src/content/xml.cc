#include "content/xml.h"

#include <cctype>

#include "common/string_util.h"

namespace gamedb::content {

const std::string* XmlNode::FindAttribute(std::string_view name) const {
  for (const auto& [k, v] : attributes) {
    if (k == name) return &v;
  }
  return nullptr;
}

std::string XmlNode::AttributeOr(std::string_view name,
                                 std::string_view fallback) const {
  const std::string* v = FindAttribute(name);
  return v != nullptr ? *v : std::string(fallback);
}

Result<double> XmlNode::NumberAttribute(std::string_view attr) const {
  const std::string* v = FindAttribute(attr);
  if (v == nullptr) {
    return Status::NotFound("<" + name + "> missing attribute '" +
                            std::string(attr) + "'");
  }
  double out = 0;
  if (!ParseDouble(*v, &out)) {
    return Status::ParseError("<" + name + "> attribute '" +
                              std::string(attr) + "' is not a number: " + *v);
  }
  return out;
}

Result<int64_t> XmlNode::IntAttribute(std::string_view attr) const {
  const std::string* v = FindAttribute(attr);
  if (v == nullptr) {
    return Status::NotFound("<" + name + "> missing attribute '" +
                            std::string(attr) + "'");
  }
  int64_t out = 0;
  if (!ParseInt64(*v, &out)) {
    return Status::ParseError("<" + name + "> attribute '" +
                              std::string(attr) + "' is not an integer: " + *v);
  }
  return out;
}

Result<bool> XmlNode::BoolAttribute(std::string_view attr) const {
  const std::string* v = FindAttribute(attr);
  if (v == nullptr) {
    return Status::NotFound("<" + name + "> missing attribute '" +
                            std::string(attr) + "'");
  }
  std::string lower = ToLower(*v);
  if (lower == "true" || lower == "1") return true;
  if (lower == "false" || lower == "0") return false;
  return Status::ParseError("<" + name + "> attribute '" + std::string(attr) +
                            "' is not a bool: " + *v);
}

const XmlNode* XmlNode::FirstChild(std::string_view child_name) const {
  for (const auto& c : children) {
    if (c->name == child_name) return c.get();
  }
  return nullptr;
}

std::vector<const XmlNode*> XmlNode::Children(std::string_view child_name) const {
  std::vector<const XmlNode*> out;
  for (const auto& c : children) {
    if (c->name == child_name) out.push_back(c.get());
  }
  return out;
}

namespace {

class XmlParser {
 public:
  explicit XmlParser(std::string_view src) : src_(src) {}

  Result<std::unique_ptr<XmlNode>> Run() {
    SkipProlog();
    GAMEDB_ASSIGN_OR_RETURN(auto root, ParseElement());
    SkipWhitespaceAndComments();
    if (pos_ < src_.size()) {
      return Err("trailing content after root element");
    }
    return root;
  }

 private:
  Status Err(const std::string& msg) const {
    return Status::ParseError(StringFormat("line %d: %s", line_, msg.c_str()));
  }

  char Peek() const { return pos_ < src_.size() ? src_[pos_] : '\0'; }
  char Get() {
    char c = src_[pos_++];
    if (c == '\n') ++line_;
    return c;
  }
  bool Eof() const { return pos_ >= src_.size(); }

  void SkipWhitespace() {
    while (!Eof() && std::isspace(static_cast<unsigned char>(Peek()))) Get();
  }

  bool TrySkipComment() {
    if (src_.substr(pos_, 4) != "<!--") return false;
    pos_ += 4;
    size_t end = src_.find("-->", pos_);
    if (end == std::string_view::npos) {
      pos_ = src_.size();
      return true;
    }
    for (size_t i = pos_; i < end; ++i) {
      if (src_[i] == '\n') ++line_;
    }
    pos_ = end + 3;
    return true;
  }

  void SkipWhitespaceAndComments() {
    while (true) {
      SkipWhitespace();
      if (!TrySkipComment()) return;
    }
  }

  void SkipProlog() {
    SkipWhitespaceAndComments();
    if (src_.substr(pos_, 5) == "<?xml") {
      size_t end = src_.find("?>", pos_);
      pos_ = end == std::string_view::npos ? src_.size() : end + 2;
    }
    SkipWhitespaceAndComments();
  }

  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '-' || c == ':' || c == '.';
  }

  Result<std::string> ParseName() {
    std::string name;
    while (!Eof() && IsNameChar(Peek())) name.push_back(Get());
    if (name.empty()) return Err("expected a name");
    return name;
  }

  Result<std::string> DecodeEntities(std::string_view raw) {
    std::string out;
    for (size_t i = 0; i < raw.size();) {
      if (raw[i] != '&') {
        out.push_back(raw[i++]);
        continue;
      }
      size_t semi = raw.find(';', i);
      if (semi == std::string_view::npos) return Err("unterminated entity");
      std::string_view entity = raw.substr(i + 1, semi - i - 1);
      if (entity == "lt") {
        out.push_back('<');
      } else if (entity == "gt") {
        out.push_back('>');
      } else if (entity == "amp") {
        out.push_back('&');
      } else if (entity == "quot") {
        out.push_back('"');
      } else if (entity == "apos") {
        out.push_back('\'');
      } else {
        return Err("unknown entity '&" + std::string(entity) + ";'");
      }
      i = semi + 1;
    }
    return out;
  }

  Result<std::unique_ptr<XmlNode>> ParseElement() {
    if (Peek() != '<') return Err("expected '<'");
    Get();
    auto node = std::make_unique<XmlNode>();
    node->line = line_;
    GAMEDB_ASSIGN_OR_RETURN(node->name, ParseName());

    // Attributes.
    while (true) {
      SkipWhitespace();
      if (Eof()) return Err("unterminated tag <" + node->name + ">");
      if (Peek() == '/' || Peek() == '>') break;
      GAMEDB_ASSIGN_OR_RETURN(std::string attr_name, ParseName());
      SkipWhitespace();
      if (Peek() != '=') return Err("expected '=' after attribute name");
      Get();
      SkipWhitespace();
      char quote = Peek();
      if (quote != '"' && quote != '\'') {
        return Err("attribute value must be quoted");
      }
      Get();
      std::string raw;
      while (!Eof() && Peek() != quote) raw.push_back(Get());
      if (Eof()) return Err("unterminated attribute value");
      Get();  // closing quote
      GAMEDB_ASSIGN_OR_RETURN(std::string value, DecodeEntities(raw));
      for (const auto& [k, v] : node->attributes) {
        if (k == attr_name) {
          return Err("duplicate attribute '" + attr_name + "'");
        }
      }
      node->attributes.emplace_back(std::move(attr_name), std::move(value));
    }

    if (Peek() == '/') {
      Get();
      if (Peek() != '>') return Err("expected '>' after '/'");
      Get();
      return node;  // self-closing
    }
    Get();  // '>'

    // Content: children and text until </name>.
    std::string text;
    while (true) {
      if (Eof()) return Err("unterminated element <" + node->name + ">");
      if (Peek() == '<') {
        if (TrySkipComment()) continue;
        if (src_.substr(pos_, 2) == "</") {
          pos_ += 2;
          GAMEDB_ASSIGN_OR_RETURN(std::string closing, ParseName());
          if (closing != node->name) {
            return Err("mismatched close tag: expected </" + node->name +
                       ">, got </" + closing + ">");
          }
          SkipWhitespace();
          if (Peek() != '>') return Err("expected '>' in close tag");
          Get();
          GAMEDB_ASSIGN_OR_RETURN(std::string decoded, DecodeEntities(text));
          node->text = std::string(Trim(decoded));
          return node;
        }
        GAMEDB_ASSIGN_OR_RETURN(auto child, ParseElement());
        node->children.push_back(std::move(child));
      } else {
        text.push_back(Get());
      }
    }
  }

  std::string_view src_;
  size_t pos_ = 0;
  int line_ = 1;
};

}  // namespace

Result<std::unique_ptr<XmlNode>> ParseXml(std::string_view source) {
  XmlParser parser(source);
  return parser.Run();
}

}  // namespace gamedb::content
