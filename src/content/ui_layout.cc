#include "content/ui_layout.h"

#include "common/string_util.h"

namespace gamedb::content {

Result<UiAnchor> ParseUiAnchor(std::string_view name) {
  std::string upper;
  for (char c : name) upper.push_back(static_cast<char>(std::toupper(c)));
  if (upper == "TOPLEFT") return UiAnchor::kTopLeft;
  if (upper == "TOP") return UiAnchor::kTop;
  if (upper == "TOPRIGHT") return UiAnchor::kTopRight;
  if (upper == "LEFT") return UiAnchor::kLeft;
  if (upper == "CENTER") return UiAnchor::kCenter;
  if (upper == "RIGHT") return UiAnchor::kRight;
  if (upper == "BOTTOMLEFT") return UiAnchor::kBottomLeft;
  if (upper == "BOTTOM") return UiAnchor::kBottom;
  if (upper == "BOTTOMRIGHT") return UiAnchor::kBottomRight;
  return Status::InvalidArgument("unknown anchor '" + std::string(name) + "'");
}

namespace {

/// Position of an anchor point within a rect.
void AnchorPoint(const UiRect& rect, UiAnchor anchor, float* px, float* py) {
  float fx = 0.5f, fy = 0.5f;
  switch (anchor) {
    case UiAnchor::kTopLeft: fx = 0; fy = 0; break;
    case UiAnchor::kTop: fx = 0.5f; fy = 0; break;
    case UiAnchor::kTopRight: fx = 1; fy = 0; break;
    case UiAnchor::kLeft: fx = 0; fy = 0.5f; break;
    case UiAnchor::kCenter: fx = 0.5f; fy = 0.5f; break;
    case UiAnchor::kRight: fx = 1; fy = 0.5f; break;
    case UiAnchor::kBottomLeft: fx = 0; fy = 1; break;
    case UiAnchor::kBottom: fx = 0.5f; fy = 1; break;
    case UiAnchor::kBottomRight: fx = 1; fy = 1; break;
  }
  *px = rect.x + fx * rect.width;
  *py = rect.y + fy * rect.height;
}

}  // namespace

Status UiLayout::LoadFrame(const XmlNode& node, const UiRect& parent,
                           int depth, UiLayout* layout) {
  const std::string* name = node.FindAttribute("name");
  if (name == nullptr || name->empty()) {
    return Status::InvalidArgument(
        StringFormat("line %d: <Frame> missing name", node.line));
  }
  if (layout->frames_.count(*name)) {
    return Status::InvalidArgument("duplicate frame name '" + *name + "'");
  }
  GAMEDB_ASSIGN_OR_RETURN(double width, node.NumberAttribute("width"));
  GAMEDB_ASSIGN_OR_RETURN(double height, node.NumberAttribute("height"));
  if (width < 0 || height < 0) {
    return Status::InvalidArgument("frame '" + *name + "' has negative size");
  }
  GAMEDB_ASSIGN_OR_RETURN(UiAnchor anchor,
                          ParseUiAnchor(node.AttributeOr("anchor", "TOPLEFT")));
  double dx = 0, dy = 0;
  if (node.FindAttribute("x") != nullptr) {
    GAMEDB_ASSIGN_OR_RETURN(dx, node.NumberAttribute("x"));
  }
  if (node.FindAttribute("y") != nullptr) {
    GAMEDB_ASSIGN_OR_RETURN(dy, node.NumberAttribute("y"));
  }

  // The frame's anchor point lands on the parent's same anchor point + the
  // offset; derive the top-left corner from there.
  float ax, ay;
  AnchorPoint(parent, anchor, &ax, &ay);
  UiRect self;
  self.width = static_cast<float>(width);
  self.height = static_cast<float>(height);
  UiRect probe{0, 0, self.width, self.height};
  float sx, sy;
  AnchorPoint(probe, anchor, &sx, &sy);
  self.x = ax + static_cast<float>(dx) - sx;
  self.y = ay + static_cast<float>(dy) - sy;

  Frame frame;
  frame.name = *name;
  frame.rect = self;
  frame.depth = depth;
  frame.order = layout->frames_.size();
  layout->frames_.emplace(*name, frame);

  for (const XmlNode* child : node.Children("Frame")) {
    GAMEDB_RETURN_NOT_OK(LoadFrame(*child, self, depth + 1, layout));
  }
  return Status::OK();
}

Result<UiLayout> UiLayout::Load(std::string_view xml_source) {
  GAMEDB_ASSIGN_OR_RETURN(auto root, ParseXml(xml_source));
  if (root->name != "Ui") {
    return Status::InvalidArgument("root element must be <Ui>");
  }
  UiLayout layout;
  GAMEDB_ASSIGN_OR_RETURN(double width, root->NumberAttribute("width"));
  GAMEDB_ASSIGN_OR_RETURN(double height, root->NumberAttribute("height"));
  layout.root_ =
      UiRect{0, 0, static_cast<float>(width), static_cast<float>(height)};
  for (const XmlNode* child : root->Children("Frame")) {
    GAMEDB_RETURN_NOT_OK(LoadFrame(*child, layout.root_, 1, &layout));
  }
  return layout;
}

Result<UiRect> UiLayout::RectOf(std::string_view frame) const {
  auto it = frames_.find(std::string(frame));
  if (it == frames_.end()) {
    return Status::NotFound("no frame '" + std::string(frame) + "'");
  }
  return it->second.rect;
}

std::string UiLayout::HitTest(float x, float y) const {
  const Frame* best = nullptr;
  for (const auto& [name, frame] : frames_) {
    if (!frame.rect.Contains(x, y)) continue;
    if (best == nullptr || frame.depth > best->depth ||
        (frame.depth == best->depth && frame.order > best->order)) {
      best = &frame;
    }
  }
  return best != nullptr ? best->name : "";
}

}  // namespace gamedb::content
