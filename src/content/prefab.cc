#include "content/prefab.h"

#include "common/string_util.h"

namespace gamedb::content {

namespace {

/// Parses an attribute string into the FieldValue kind the field expects.
Result<FieldValue> ParseFieldValue(const FieldInfo& field,
                                   const std::string& raw) {
  switch (field.type()) {
    case FieldType::kFloat:
    case FieldType::kDouble: {
      double d = 0;
      if (!ParseDouble(raw, &d)) {
        return Status::ParseError("'" + raw + "' is not a number");
      }
      return FieldValue(d);
    }
    case FieldType::kInt32:
    case FieldType::kUInt32:
    case FieldType::kInt64:
    case FieldType::kUInt64: {
      int64_t i = 0;
      if (!ParseInt64(raw, &i)) {
        return Status::ParseError("'" + raw + "' is not an integer");
      }
      return FieldValue(i);
    }
    case FieldType::kBool: {
      std::string lower = ToLower(raw);
      if (lower == "true" || lower == "1") return FieldValue(true);
      if (lower == "false" || lower == "0") return FieldValue(false);
      return Status::ParseError("'" + raw + "' is not a bool");
    }
    case FieldType::kVec3: {
      auto parts = Split(raw, ',');
      if (parts.size() != 3) {
        return Status::ParseError("'" + raw + "' is not 'x,y,z'");
      }
      double x, y, z;
      if (!ParseDouble(std::string(Trim(parts[0])), &x) ||
          !ParseDouble(std::string(Trim(parts[1])), &y) ||
          !ParseDouble(std::string(Trim(parts[2])), &z)) {
        return Status::ParseError("'" + raw + "' is not 'x,y,z'");
      }
      return FieldValue(Vec3(static_cast<float>(x), static_cast<float>(y),
                             static_cast<float>(z)));
    }
    case FieldType::kString:
      return FieldValue(raw);
    case FieldType::kEntity:
      return Status::NotSupported("entity references in prefabs");
  }
  return Status::ParseError("unknown field type");
}

}  // namespace

Result<PrefabLibrary> PrefabLibrary::Load(std::string_view xml_source) {
  GAMEDB_ASSIGN_OR_RETURN(auto root, ParseXml(xml_source));
  if (root->name != "Prefabs") {
    return Status::InvalidArgument("root element must be <Prefabs>, got <" +
                                   root->name + ">");
  }
  PrefabLibrary lib;
  for (const XmlNode* node : root->Children("Prefab")) {
    Prefab prefab;
    const std::string* name = node->FindAttribute("name");
    if (name == nullptr || name->empty()) {
      return Status::InvalidArgument(
          StringFormat("line %d: <Prefab> missing name", node->line));
    }
    prefab.name = *name;
    prefab.extends = node->AttributeOr("extends", "");
    if (lib.prefabs_.count(prefab.name)) {
      return Status::InvalidArgument("duplicate prefab '" + prefab.name + "'");
    }

    for (const XmlNode* comp_node : node->Children("Component")) {
      const std::string* type_name = comp_node->FindAttribute("type");
      if (type_name == nullptr) {
        return Status::InvalidArgument(StringFormat(
            "line %d: <Component> missing type", comp_node->line));
      }
      const TypeInfo* type = TypeRegistry::Global().FindByName(*type_name);
      if (type == nullptr) {
        return Status::NotFound("prefab '" + prefab.name +
                                "': unregistered component '" + *type_name +
                                "'");
      }
      ComponentSetting setting;
      setting.type = type;
      for (const auto& [attr, raw] : comp_node->attributes) {
        if (attr == "type") continue;
        const FieldInfo* field = type->FindField(attr);
        if (field == nullptr) {
          return Status::NotFound("prefab '" + prefab.name + "': component '" +
                                  *type_name + "' has no field '" + attr + "'");
        }
        auto value = ParseFieldValue(*field, raw);
        if (!value.ok()) {
          return Status::ParseError("prefab '" + prefab.name + "': field '" +
                                    attr + "': " + value.status().message());
        }
        setting.fields.push_back(FieldSetting{field, std::move(*value)});
      }
      prefab.components.push_back(std::move(setting));
    }
    lib.prefabs_.emplace(prefab.name, std::move(prefab));
  }

  // Link check: extends targets exist and the chain is acyclic.
  for (const auto& [name, prefab] : lib.prefabs_) {
    std::string current = prefab.extends;
    int depth = 0;
    while (!current.empty()) {
      auto it = lib.prefabs_.find(current);
      if (it == lib.prefabs_.end()) {
        return Status::NotFound("prefab '" + name + "' extends unknown '" +
                                current + "'");
      }
      if (++depth > 32 || current == name) {
        return Status::InvalidArgument("prefab inheritance cycle at '" +
                                       name + "'");
      }
      current = it->second.extends;
    }
  }
  return lib;
}

std::vector<std::string> PrefabLibrary::Names() const {
  std::vector<std::string> out;
  for (const auto& [name, prefab] : prefabs_) out.push_back(name);
  return out;
}

Status PrefabLibrary::ApplyPrefab(World* world, EntityId e,
                                  const Prefab& prefab, int depth) const {
  if (depth > 32) {
    return Status::InvalidArgument("prefab inheritance too deep");
  }
  // Base first so derived settings override.
  if (!prefab.extends.empty()) {
    const Prefab& base = prefabs_.at(prefab.extends);
    GAMEDB_RETURN_NOT_OK(ApplyPrefab(world, e, base, depth + 1));
  }
  for (const ComponentSetting& setting : prefab.components) {
    ComponentStore* store = world->StoreById(setting.type->id());
    GAMEDB_CHECK(store != nullptr);  // link-checked at Load
    store->EmplaceDefault(e);
    Status field_status = Status::OK();
    store->PatchRaw(e, [&](void* comp) {
      for (const FieldSetting& fs : setting.fields) {
        Status st = fs.field->Set(comp, fs.value);
        if (!st.ok() && field_status.ok()) field_status = st;
      }
    });
    GAMEDB_RETURN_NOT_OK(field_status);
  }
  return Status::OK();
}

Result<EntityId> PrefabLibrary::Instantiate(World* world,
                                            std::string_view prefab) const {
  EntityId e = world->Create();
  Status st = ApplyTo(world, e, prefab);
  if (!st.ok()) {
    world->Destroy(e);
    return st;
  }
  return e;
}

Status PrefabLibrary::ApplyTo(World* world, EntityId e,
                              std::string_view prefab) const {
  auto it = prefabs_.find(std::string(prefab));
  if (it == prefabs_.end()) {
    return Status::NotFound("no prefab '" + std::string(prefab) + "'");
  }
  if (!world->Alive(e)) {
    return Status::InvalidArgument("entity is dead");
  }
  return ApplyPrefab(world, e, it->second, 0);
}

}  // namespace gamedb::content
