#pragma once

/// \file ui_layout.h
/// WoW-style declarative UI layout: players/designers describe frames in
/// XML; the engine resolves anchors into absolute rectangles. This is the
/// tutorial's canonical example of data-driven, user-extensible content.
///
/// Format:
///   <Ui width="800" height="600">
///     <Frame name="hp_bar" width="200" height="24"
///            anchor="TOPLEFT" x="10" y="10">
///       <Frame name="hp_text" width="100" height="20" anchor="CENTER"/>
///     </Frame>
///   </Ui>
///
/// `anchor` places the frame's anchor point at the same-named point of its
/// parent, offset by (x, y). Y grows downward. Nested frames anchor to
/// their parent frame.

#include <map>
#include <string>

#include "common/status.h"
#include "content/xml.h"

namespace gamedb::content {

/// Screen-space rectangle (pixels; y down).
struct UiRect {
  float x = 0, y = 0, width = 0, height = 0;
  float right() const { return x + width; }
  float bottom() const { return y + height; }
  bool Contains(float px, float py) const {
    return px >= x && px <= right() && py >= y && py <= bottom();
  }
};

/// Anchor points.
enum class UiAnchor : uint8_t {
  kTopLeft,
  kTop,
  kTopRight,
  kLeft,
  kCenter,
  kRight,
  kBottomLeft,
  kBottom,
  kBottomRight,
};

/// Parses "TOPLEFT", "CENTER", ... (case-insensitive).
Result<UiAnchor> ParseUiAnchor(std::string_view name);

/// A resolved UI layout.
class UiLayout {
 public:
  /// Parses and resolves a `<Ui>` document. Fails on duplicate frame names,
  /// unknown anchors, or missing sizes.
  static Result<UiLayout> Load(std::string_view xml_source);

  /// Absolute rect of a frame.
  Result<UiRect> RectOf(std::string_view frame) const;

  /// Topmost frame (deepest in declaration order) containing the point, or
  /// empty string — hit testing for input dispatch.
  std::string HitTest(float x, float y) const;

  size_t FrameCount() const { return frames_.size(); }
  const UiRect& root() const { return root_; }

 private:
  struct Frame {
    std::string name;
    UiRect rect;
    int depth;      // nesting depth (children above parents)
    size_t order;   // declaration order (later above earlier)
  };

  static Status LoadFrame(const XmlNode& node, const UiRect& parent,
                          int depth, UiLayout* layout);

  UiRect root_;
  std::map<std::string, Frame> frames_;
};

}  // namespace gamedb::content
