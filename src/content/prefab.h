#pragma once

/// \file prefab.h
/// Entity templates ("prefabs"): the content-pipeline piece that turns
/// designer XML into live entities. Templates support single inheritance
/// (`extends="base"`) — the expansion-pack pattern the tutorial describes,
/// where new content derives from shipped content without code changes.
///
/// Format:
///   <Prefabs>
///     <Prefab name="beast">
///       <Component type="Health" hp="50" max_hp="50"/>
///       <Component type="Position"/>
///     </Prefab>
///     <Prefab name="wolf" extends="beast">
///       <Component type="Health" hp="35" max_hp="35"/>   <!-- override -->
///       <Component type="Combat" attack="7" range="2"/>
///     </Prefab>
///   </Prefabs>
///
/// Component attributes are matched to reflected fields by name; numeric
/// field kinds convert automatically. Vec3 fields accept "x,y,z".

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "content/xml.h"
#include "core/world.h"

namespace gamedb::content {

/// A loaded prefab library.
class PrefabLibrary {
 public:
  /// Parses and link-checks a `<Prefabs>` document: inheritance targets
  /// must exist (and be acyclic), component types and fields must be
  /// registered in the global TypeRegistry.
  static Result<PrefabLibrary> Load(std::string_view xml_source);

  /// Creates an entity from the named template (inherited components are
  /// applied base-first, so derived values override).
  Result<EntityId> Instantiate(World* world, std::string_view prefab) const;

  /// Applies the template onto an existing entity.
  Status ApplyTo(World* world, EntityId e, std::string_view prefab) const;

  bool Has(std::string_view prefab) const {
    return prefabs_.count(std::string(prefab)) > 0;
  }
  size_t size() const { return prefabs_.size(); }
  std::vector<std::string> Names() const;

 private:
  struct FieldSetting {
    const FieldInfo* field;
    FieldValue value;
  };
  struct ComponentSetting {
    const TypeInfo* type;
    std::vector<FieldSetting> fields;
  };
  struct Prefab {
    std::string name;
    std::string extends;  // empty for roots
    std::vector<ComponentSetting> components;
  };

  Status ApplyPrefab(World* world, EntityId e, const Prefab& prefab,
                     int depth) const;

  std::map<std::string, Prefab> prefabs_;
};

}  // namespace gamedb::content
