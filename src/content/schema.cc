#include "content/schema.h"

#include "common/string_util.h"

namespace gamedb::content {

namespace {

Status Err(const XmlNode& node, const std::string& msg) {
  return Status::InvalidArgument(
      StringFormat("line %d: <%s>: %s", node.line, node.name.c_str(),
                   msg.c_str()));
}

Status CheckAttrType(const XmlNode& node, const std::string& name,
                     AttrType type) {
  switch (type) {
    case AttrType::kString:
      return Status::OK();
    case AttrType::kNumber: {
      Result<double> r = node.NumberAttribute(name);
      return r.ok() ? Status::OK() : Err(node, r.status().message());
    }
    case AttrType::kInt: {
      Result<int64_t> r = node.IntAttribute(name);
      return r.ok() ? Status::OK() : Err(node, r.status().message());
    }
    case AttrType::kBool: {
      Result<bool> r = node.BoolAttribute(name);
      return r.ok() ? Status::OK() : Err(node, r.status().message());
    }
  }
  return Status::OK();
}

}  // namespace

Status Schema::ValidateOne(const XmlNode& node) const {
  auto it = elements_.find(node.name);
  if (it == elements_.end()) {
    return Err(node, "unknown element");
  }
  const ElementSpec& spec = it->second;

  // Attributes: required present, types parse, no unknowns (unless opened).
  for (const auto& [name, attr_spec] : spec.attrs_) {
    if (node.FindAttribute(name) == nullptr) {
      if (attr_spec.required) {
        return Err(node, "missing required attribute '" + name + "'");
      }
      continue;
    }
    GAMEDB_RETURN_NOT_OK(CheckAttrType(node, name, attr_spec.type));
  }
  if (!spec.allow_unknown_attrs_) {
    for (const auto& [name, value] : node.attributes) {
      if (spec.attrs_.find(name) == spec.attrs_.end()) {
        return Err(node, "unknown attribute '" + name + "'");
      }
    }
  }

  // Children: names declared, cardinalities respected.
  std::map<std::string, size_t> counts;
  for (const auto& child : node.children) {
    if (spec.children_.find(child->name) == spec.children_.end()) {
      return Err(node, "unexpected child <" + child->name + ">");
    }
    ++counts[child->name];
  }
  for (const auto& [name, child_spec] : spec.children_) {
    size_t n = counts.count(name) ? counts.at(name) : 0;
    if (n < child_spec.min_count) {
      return Err(node, StringFormat("needs at least %zu <%s> children, has %zu",
                                    child_spec.min_count, name.c_str(), n));
    }
    if (n > child_spec.max_count) {
      return Err(node, StringFormat("allows at most %zu <%s> children, has %zu",
                                    child_spec.max_count, name.c_str(), n));
    }
  }
  return Status::OK();
}

Status Schema::Validate(const XmlNode& node) const {
  GAMEDB_RETURN_NOT_OK(ValidateOne(node));
  for (const auto& child : node.children) {
    GAMEDB_RETURN_NOT_OK(Validate(*child));
  }
  return Status::OK();
}

}  // namespace gamedb::content
