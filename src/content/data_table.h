#pragma once

/// \file data_table.h
/// Designer data tables: weighted loot tables (the archetypal "game content
/// as data" artifact) loaded from XML.
///
///   <LootTables>
///     <LootTable name="boss">
///       <Entry item="epic_sword" weight="1"/>
///       <Entry item="gold_pile" weight="20" min="50" max="200"/>
///     </LootTable>
///   </LootTables>

#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "content/xml.h"

namespace gamedb::content {

/// One possible drop.
struct LootEntry {
  std::string item;
  double weight = 1.0;
  int64_t min_count = 1;
  int64_t max_count = 1;
};

/// A sampled drop.
struct LootDrop {
  std::string item;
  int64_t count = 1;
};

/// Weighted loot table.
class LootTable {
 public:
  explicit LootTable(std::vector<LootEntry> entries);

  /// Samples one drop (weights proportional). Table must be non-empty.
  LootDrop Roll(Rng* rng) const;

  /// Probability of a given item (for tests and drop-rate tooling).
  double ProbabilityOf(std::string_view item) const;

  const std::vector<LootEntry>& entries() const { return entries_; }

 private:
  std::vector<LootEntry> entries_;
  double total_weight_ = 0.0;
};

/// A set of loot tables loaded from a `<LootTables>` document.
class LootTableSet {
 public:
  static Result<LootTableSet> Load(std::string_view xml_source);

  const LootTable* Find(std::string_view name) const;
  size_t size() const { return tables_.size(); }

 private:
  std::map<std::string, LootTable> tables_;
};

}  // namespace gamedb::content
