#include "content/data_table.h"

#include "common/macros.h"
#include "common/string_util.h"

namespace gamedb::content {

LootTable::LootTable(std::vector<LootEntry> entries)
    : entries_(std::move(entries)) {
  GAMEDB_CHECK(!entries_.empty());
  for (const LootEntry& e : entries_) {
    GAMEDB_CHECK(e.weight > 0.0);
    GAMEDB_CHECK(e.min_count <= e.max_count);
    total_weight_ += e.weight;
  }
}

LootDrop LootTable::Roll(Rng* rng) const {
  double pick = rng->NextDouble() * total_weight_;
  const LootEntry* chosen = &entries_.back();
  for (const LootEntry& e : entries_) {
    if (pick < e.weight) {
      chosen = &e;
      break;
    }
    pick -= e.weight;
  }
  LootDrop drop;
  drop.item = chosen->item;
  drop.count = rng->NextInt(chosen->min_count, chosen->max_count);
  return drop;
}

double LootTable::ProbabilityOf(std::string_view item) const {
  double w = 0;
  for (const LootEntry& e : entries_) {
    if (e.item == item) w += e.weight;
  }
  return w / total_weight_;
}

Result<LootTableSet> LootTableSet::Load(std::string_view xml_source) {
  GAMEDB_ASSIGN_OR_RETURN(auto root, ParseXml(xml_source));
  if (root->name != "LootTables") {
    return Status::InvalidArgument("root element must be <LootTables>");
  }
  LootTableSet set;
  for (const XmlNode* table_node : root->Children("LootTable")) {
    const std::string* name = table_node->FindAttribute("name");
    if (name == nullptr) {
      return Status::InvalidArgument(StringFormat(
          "line %d: <LootTable> missing name", table_node->line));
    }
    if (set.tables_.count(*name)) {
      return Status::InvalidArgument("duplicate loot table '" + *name + "'");
    }
    std::vector<LootEntry> entries;
    for (const XmlNode* entry_node : table_node->Children("Entry")) {
      LootEntry entry;
      const std::string* item = entry_node->FindAttribute("item");
      if (item == nullptr) {
        return Status::InvalidArgument(StringFormat(
            "line %d: <Entry> missing item", entry_node->line));
      }
      entry.item = *item;
      if (entry_node->FindAttribute("weight") != nullptr) {
        GAMEDB_ASSIGN_OR_RETURN(entry.weight,
                                entry_node->NumberAttribute("weight"));
        if (entry.weight <= 0) {
          return Status::InvalidArgument("entry '" + entry.item +
                                         "': weight must be positive");
        }
      }
      if (entry_node->FindAttribute("min") != nullptr) {
        GAMEDB_ASSIGN_OR_RETURN(entry.min_count,
                                entry_node->IntAttribute("min"));
      }
      if (entry_node->FindAttribute("max") != nullptr) {
        GAMEDB_ASSIGN_OR_RETURN(entry.max_count,
                                entry_node->IntAttribute("max"));
      }
      if (entry.min_count > entry.max_count) {
        return Status::InvalidArgument("entry '" + entry.item +
                                       "': min > max");
      }
      entries.push_back(std::move(entry));
    }
    if (entries.empty()) {
      return Status::InvalidArgument("loot table '" + *name + "' is empty");
    }
    set.tables_.emplace(*name, LootTable(std::move(entries)));
  }
  return set;
}

const LootTable* LootTableSet::Find(std::string_view name) const {
  auto it = tables_.find(std::string(name));
  return it == tables_.end() ? nullptr : &it->second;
}

}  // namespace gamedb::content
