#pragma once

/// \file xml.h
/// Minimal XML parser for game content files. The tutorial's data-driven
/// design section: "World of Warcraft contains an XML specification
/// language that allows players to define the look of their user
/// interface". This dialect covers what content files need — elements,
/// attributes, text, comments, self-closing tags, the five standard
/// entities — and nothing else (no DTD/namespaces/processing instructions).

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace gamedb::content {

/// One element of the parsed tree.
struct XmlNode {
  std::string name;
  std::vector<std::pair<std::string, std::string>> attributes;
  std::vector<std::unique_ptr<XmlNode>> children;
  /// Concatenated character data directly inside this element (trimmed).
  std::string text;
  int line = 0;

  /// Attribute value, or nullptr.
  const std::string* FindAttribute(std::string_view name) const;
  /// Attribute with a default.
  std::string AttributeOr(std::string_view name,
                          std::string_view fallback) const;
  /// Typed attribute readers; error when missing or malformed.
  Result<double> NumberAttribute(std::string_view name) const;
  Result<int64_t> IntAttribute(std::string_view name) const;
  Result<bool> BoolAttribute(std::string_view name) const;

  /// First child with the given element name, or nullptr.
  const XmlNode* FirstChild(std::string_view name) const;
  /// All children with the given element name.
  std::vector<const XmlNode*> Children(std::string_view name) const;
};

/// Parses a document; returns its single root element.
Result<std::unique_ptr<XmlNode>> ParseXml(std::string_view source);

}  // namespace gamedb::content
