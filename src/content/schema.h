#pragma once

/// \file schema.h
/// Content schema validation: the guardrail between designer-authored XML
/// and the engine. A Schema declares, per element name, the required and
/// optional attributes (with types) and which child elements may appear
/// (with cardinality). Validation errors carry the element line number so
/// designers can fix their files.
///
/// Paper: the design-tools / content-management section — games as
/// data-driven artifacts authored by non-programmers, with the XML + blob
/// schema-evolution tension benchmarked in E9.

#include <map>
#include <string>

#include "common/status.h"
#include "content/xml.h"

namespace gamedb::content {

/// Attribute value type.
enum class AttrType : uint8_t { kString, kNumber, kInt, kBool };

/// Declared attribute.
struct AttrSpec {
  AttrType type = AttrType::kString;
  bool required = false;
};

/// Child cardinality.
struct ChildSpec {
  size_t min_count = 0;
  size_t max_count = SIZE_MAX;
};

/// Declaration for one element name.
class ElementSpec {
 public:
  ElementSpec& RequiredAttr(std::string name, AttrType type) {
    attrs_[std::move(name)] = AttrSpec{type, true};
    return *this;
  }
  ElementSpec& OptionalAttr(std::string name, AttrType type) {
    attrs_[std::move(name)] = AttrSpec{type, false};
    return *this;
  }
  /// Permits child elements named `name` between min and max times.
  ElementSpec& Child(std::string name, size_t min_count = 0,
                     size_t max_count = SIZE_MAX) {
    children_[std::move(name)] = ChildSpec{min_count, max_count};
    return *this;
  }
  /// Allows attributes not declared here (extension points).
  ElementSpec& AllowUnknownAttrs() {
    allow_unknown_attrs_ = true;
    return *this;
  }

 private:
  friend class Schema;
  std::map<std::string, AttrSpec> attrs_;
  std::map<std::string, ChildSpec> children_;
  bool allow_unknown_attrs_ = false;
};

/// A set of element declarations, validated recursively from the root.
class Schema {
 public:
  /// Declares (or fetches for extension) the spec for an element name.
  ElementSpec& Element(const std::string& name) { return elements_[name]; }

  /// Validates `node` and its subtree. Elements without a declaration are
  /// rejected ("unknown element").
  Status Validate(const XmlNode& node) const;

 private:
  Status ValidateOne(const XmlNode& node) const;
  std::map<std::string, ElementSpec> elements_;
};

}  // namespace gamedb::content
