// Data-driven design end to end: XML prefabs + loot tables + a GSL behavior
// script + event triggers drive a small hunt simulation without a line of
// game-specific C++ logic.
//
//   ./build/examples/scripted_world
//
// With `--threads N` it instead runs the *parallel* scripted tick: a wolf
// pack whose per-entity GSL behavior executes set-at-a-time on a ScriptHost
// (one interpreter per shard, writes through effect channels + deferred
// ops), then proves determinism by re-running the same pack single-threaded
// and comparing serialized world state bit for bit.
//
//   ./build/examples/scripted_world --threads 8 [--wolves 2000] [--ticks 50]
//
// With `--explain` the classic hunt runs with the cost-based query planner
// attached: before the hunt it prints the statistics snapshot and the
// EXPLAIN output of the queries the designer script executes every tick,
// and after the hunt EXPLAIN ANALYZE for the same queries (estimated vs
// actual rows per operator, from the runtime counters the script's own
// executions recorded) plus the plan-cache hit rate (per-tick replanning
// is a hash lookup).
//
//   ./build/examples/scripted_world --explain
//
// `--trace FILE` writes a chrome://tracing (trace_event JSON) span trace
// of the run — planner spans in the classic hunt, per-shard script-phase
// spans in `--threads` mode — validated before the process exits.
//
//   ./build/examples/scripted_world --threads 4 --trace trace.json
//
// `--flightrec FILE` (parallel mode only) arms the flight recorder +
// watchdog over the N-thread run and dumps a validated
// gamedb.flightrec.v1 diagnostic bundle at the end — render it with
// tools/telereport.
//
//   ./build/examples/scripted_world --threads 4 --flightrec bundle.json
//
// `--lint` runs the GSL static verifier (script/analyzer.h) over the
// shipped packs (assets/scripts/hunt.gsl, wolf_pack.gsl) and exits 0/1;
// `--strict-scripts` makes every script load reject on verifier errors.
//
//   ./build/examples/scripted_world --lint

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "content/data_table.h"
#include "content/prefab.h"
#include "core/serialize.h"
#include "planner/planner.h"
#include "script/analyzer.h"
#include "script/bindings.h"
#include "script/builtins.h"
#include "script/host.h"
#include "script/parser.h"
#include "script/triggers.h"
#include "telemetry/bundle.h"
#include "telemetry/registry.h"
#include "telemetry/timeseries.h"
#include "telemetry/trace.h"
#include "telemetry/watchdog.h"

// Shipped GSL packs, embedded from assets/scripts/ at build time
// (cmake/EmbedGsl.cmake): kHuntScript / kWolfPackScript + *Name origins.
#include "hunt_gsl.h"
#include "wolf_pack_gsl.h"

using namespace gamedb;          // NOLINT
using gamedb::script::Value;

// Designer content: entity templates with inheritance.
constexpr char kPrefabs[] = R"(
<Prefabs>
  <Prefab name="beast">
    <Component type="Health" hp="40" max_hp="40"/>
    <Component type="Position"/>
    <Component type="Faction" team="2"/>
  </Prefab>
  <Prefab name="wolf" extends="beast">
    <Component type="Combat" attack="6" range="2"/>
  </Prefab>
  <Prefab name="alpha_wolf" extends="wolf">
    <Component type="Health" hp="80" max_hp="80"/>
    <Component type="Combat" attack="12" range="2"/>
  </Prefab>
  <Prefab name="hunter">
    <Component type="Health" hp="100" max_hp="100"/>
    <Component type="Position"/>
    <Component type="Faction" team="1"/>
    <Component type="Combat" attack="15" range="5"/>
  </Prefab>
</Prefabs>)";

constexpr char kLoot[] = R"(
<LootTables>
  <LootTable name="wolf_drops">
    <Entry item="pelt" weight="70"/>
    <Entry item="fang" weight="25"/>
    <Entry item="moonstone" weight="5"/>
  </LootTable>
</LootTables>)";

// Runs the pack sim at `threads` threads; fills `snapshot` with the final
// serialized world and returns elapsed seconds for the scripted ticks.
static double RunPack(size_t threads, size_t wolves, size_t ticks,
                      const content::PrefabLibrary& prefabs, bool strict,
                      telemetry::Tracer* tracer,
                      telemetry::MetricsRegistry* registry,
                      telemetry::FlightRecorder* recorder,
                      telemetry::Watchdog* watchdog,
                      std::string* snapshot) {
  World world;
  std::vector<EntityId> pack;
  pack.reserve(wolves);
  for (size_t i = 0; i < wolves; ++i) {
    pack.push_back(prefabs.Instantiate(&world, "wolf").value());
  }
  // Feuds: scattered, deterministic.
  for (size_t i = 0; i < wolves; ++i) {
    world.Patch<Combat>(pack[i], [&](Combat& c) {
      c.target = pack[(i * 37 + 11) % wolves];
    });
  }

  script::ScriptHostOptions opts;
  opts.num_threads = threads;
  opts.interpreter.restriction = script::Restriction::kNoRecursion;
  opts.telemetry.tracer = tracer;
  opts.telemetry.metrics = registry;
  if (strict) opts.strictness = script::Strictness::kStrict;
  script::ScriptHost host(&world, opts);
  host.OnChannel("bite", [&world](EntityId e, double total) {
    bool dead = false;
    world.Patch<Health>(e, [&](Health& h) {
      h.hp -= float(total);
      dead = h.hp <= 0.0f;
    });
    if (dead) world.Destroy(e);
  });
  host.OnChannel("lick", [&world](EntityId e, double total) {
    world.Patch<Health>(e, [&](Health& h) {
      h.hp = std::min(h.hp + float(total), h.max_hp);
    });
  });
  if (Status st = host.Load(kWolfPackScript, kWolfPackScriptName); !st.ok()) {
    std::printf("pack script error: %s\n", st.ToString().c_str());
    std::exit(1);
  }

  auto start = std::chrono::steady_clock::now();
  for (size_t t = 0; t < ticks; ++t) {
    world.AdvanceTick();
    auto stats = host.RunTickOver("pack_tick", "Combat");
    if (!stats.ok() || stats->script_errors > 0) {
      std::printf("tick %zu failed: %s\n", t,
                  (stats.ok() ? stats->first_error : stats.status())
                      .ToString()
                      .c_str());
      std::exit(1);
    }
    // Continuous observability at the sequential point, exactly as
    // loadgen's Driver does it.
    if (recorder != nullptr) recorder->Sample(t + 1);
    if (watchdog != nullptr) {
      for (const std::string& rule : watchdog->Evaluate(t + 1)) {
        std::printf("  watchdog TRIPPED at tick %zu: %s\n", t + 1,
                    rule.c_str());
      }
    }
  }
  double secs = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  snapshot->clear();
  EncodeWorldSnapshot(world, snapshot);
  std::printf("  %zu thread%s: %zu wolves x %zu ticks in %.3fs (%.0f "
              "entity-ticks/s), %zu survivors\n",
              threads, threads == 1 ? " " : "s", wolves, ticks, secs,
              double(wolves * ticks) / secs, world.AliveCount());
  return secs;
}

static int RunParallelMode(size_t threads, size_t wolves, size_t ticks,
                           bool strict, telemetry::Tracer* tracer,
                           const std::string& flightrec_path) {
  auto prefabs = content::PrefabLibrary::Load(kPrefabs);
  if (!prefabs.ok()) {
    std::printf("prefab error: %s\n", prefabs.status().ToString().c_str());
    return 1;
  }
  // --flightrec: record the parallel run per tick and always dump a bundle
  // at the end — the demo equivalent of loadgen's breach-triggered dumps.
  telemetry::MetricsRegistry registry;
  telemetry::FlightRecorder recorder(&registry);
  telemetry::Watchdog watchdog(&recorder);
  telemetry::MetricsRegistry* registry_ptr = nullptr;
  telemetry::FlightRecorder* recorder_ptr = nullptr;
  telemetry::Watchdog* watchdog_ptr = nullptr;
  if (!flightrec_path.empty()) {
    registry.SetEnabled(true);
    registry_ptr = &registry;
    // Any script error across the retained window trips (counter-delta
    // series sum): the pack sim treats errors as fatal anyway, so a trip
    // here means the recorder caught it the same tick.
    telemetry::HealthRule errors;
    errors.name = "script_errors";
    errors.metric = "script.errors";
    errors.aggregation = telemetry::Aggregation::kSum;
    errors.window = ticks;
    errors.above = true;
    errors.threshold = 0.0;
    errors.severity = telemetry::Severity::kCritical;
    watchdog.AddRule(errors);
  }
  std::printf("parallel pack sim (set-at-a-time GSL on the script host):\n");
  std::string snap_seq;
  double secs_seq = RunPack(1, wolves, ticks, *prefabs, strict, tracer,
                            registry_ptr, nullptr, nullptr, &snap_seq);
  if (!flightrec_path.empty()) {
    // Only the N-thread run is recorded: enabling here primes counter
    // baselines so the 1-thread warm-up doesn't pollute the deltas.
    recorder.SetEnabled(true);
    recorder_ptr = &recorder;
    watchdog_ptr = &watchdog;
  }
  std::string snap_par;
  double secs_par = RunPack(threads, wolves, ticks, *prefabs, strict, tracer,
                            registry_ptr, recorder_ptr, watchdog_ptr,
                            &snap_par);
  bool identical = snap_seq == snap_par;
  std::printf("  speedup at %zu threads: %.2fx — world state %s\n", threads,
              secs_seq / secs_par,
              identical ? "bit-identical to the 1-thread run"
                        : "DIVERGED (determinism bug!)");
  if (!flightrec_path.empty()) {
    telemetry::BundleInputs in;
    in.reason = identical ? "manual" : "determinism_divergence";
    in.tick = ticks;
    in.scenario = "scripted_world.pack";
    in.recorder = &recorder;
    in.watchdog = &watchdog;
    in.metrics = &registry;
    in.tracer = tracer;
    std::string doc = telemetry::RenderFlightRecorderBundle(in);
    if (Status st = telemetry::ValidateFlightRecorderBundle(doc); !st.ok()) {
      std::printf("flightrec validation failed: %s\n", st.ToString().c_str());
      return 1;
    }
    std::ofstream out(flightrec_path, std::ios::binary | std::ios::trunc);
    out << doc;
    if (!out.flush()) {
      std::printf("cannot write flightrec file '%s'\n",
                  flightrec_path.c_str());
      return 1;
    }
    std::printf("flightrec: %zu series -> %s\n", recorder.series_count(),
                flightrec_path.c_str());
  }
  return identical ? 0 : 1;
}

// --lint: run the static verifier over every shipped pack (no simulation)
// and exit non-zero on any error-severity finding. This is what CI's
// scenario-smoke job runs to keep the shipped packs strict-clean.
static int RunLint() {
  World world;
  script::Interpreter interp;
  script::RegisterCoreBuiltins(&interp);
  script::BindWorld(&interp, &world, nullptr, script::WorldBindOptions{});
  script::TriggerSystem triggers(&interp);
  triggers.InstallFireBuiltin();

  struct Pack {
    const char* source;
    const char* origin;
    script::PhaseContext phase;
  };
  // hunt.gsl runs on a sequential interpreter (direct mutations legal);
  // wolf_pack.gsl runs as a parallel query phase with deferred writes.
  const Pack packs[] = {
      {kHuntScript, kHuntScriptName, script::PhaseContext::kSequential},
      {kWolfPackScript, kWolfPackScriptName,
       script::PhaseContext::kParallelDefer},
  };
  bool ok = true;
  for (const Pack& pack : packs) {
    auto parsed = script::Parse(pack.source, pack.origin);
    if (!parsed.ok()) {
      std::printf("%s: parse error: %s\n", pack.origin,
                  parsed.status().ToString().c_str());
      ok = false;
      continue;
    }
    script::VerifierOptions vopts;
    vopts.restriction = script::Restriction::kNoRecursion;
    vopts.phase = pack.phase;
    vopts.is_builtin = [&interp](const std::string& name) {
      return interp.IsBuiltin(name);
    };
    vopts.schema = script::ReflectionSchema();
    vopts.top_level_must_be_pure =
        pack.phase != script::PhaseContext::kSequential;
    script::DiagnosticSink sink;
    script::VerifyReport report = script::Verify(*parsed, vopts, &sink);
    for (const auto& d : sink.diagnostics()) {
      std::printf("%s\n", d.ToString().c_str());
    }
    std::printf("%s: %zu error(s), %zu warning(s); effects [%s], "
                "max entry cost %.0f units (%s)\n",
                pack.origin, sink.error_count(), sink.warning_count(),
                script::EffectSetName(report.effects).c_str(),
                report.max_entry_cost, report.max_entry_name.c_str());
    if (sink.has_errors()) ok = false;
  }
  return ok ? 0 : 1;
}

// Renders the trace, self-validates it through the independent schema
// checker, and writes it to `path`. Returns 0 on success.
static int WriteTrace(const telemetry::Tracer& tracer,
                      const std::string& path) {
  std::string doc = telemetry::RenderChromeTraceJson(tracer);
  if (Status st = telemetry::ValidateChromeTraceJson(doc); !st.ok()) {
    std::printf("trace validation failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << doc;
  if (!out.flush()) {
    std::printf("cannot write trace file '%s'\n", path.c_str());
    return 1;
  }
  std::printf("trace: %zu span(s) -> %s (load in chrome://tracing)\n",
              tracer.size(), path.c_str());
  return 0;
}

int main(int argc, char** argv) {
  RegisterStandardComponents();

  size_t threads = 0;  // 0 = classic single-threaded hunt demo
  size_t wolves = 2000;
  size_t ticks = 50;
  bool explain = false;
  bool lint = false;
  bool strict = false;
  std::string trace_path;
  std::string flightrec_path;
  for (int i = 1; i < argc; ++i) {
    auto number_after = [&](const char* flag) -> size_t {
      if (i + 1 >= argc) {
        std::printf("%s needs a positive number\n", flag);
        std::exit(2);
      }
      const char* arg = argv[++i];
      char* end = nullptr;
      unsigned long long v = std::strtoull(arg, &end, 10);
      // Reject junk outright: a silently-zero value would turn the
      // parallel determinism check into a vacuous empty-world comparison.
      if (end == arg || *end != '\0' || v == 0) {
        std::printf("%s needs a positive number, got '%s'\n", flag, arg);
        std::exit(2);
      }
      return size_t(v);
    };
    if (std::strcmp(argv[i], "--threads") == 0) {
      threads = number_after("--threads");
    } else if (std::strcmp(argv[i], "--wolves") == 0) {
      wolves = number_after("--wolves");
    } else if (std::strcmp(argv[i], "--ticks") == 0) {
      ticks = number_after("--ticks");
    } else if (std::strcmp(argv[i], "--explain") == 0) {
      explain = true;
    } else if (std::strcmp(argv[i], "--lint") == 0) {
      lint = true;
    } else if (std::strcmp(argv[i], "--strict-scripts") == 0) {
      strict = true;
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      if (i + 1 >= argc) {
        std::printf("--trace needs a file path\n");
        return 2;
      }
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--flightrec") == 0) {
      if (i + 1 >= argc) {
        std::printf("--flightrec needs a file path\n");
        return 2;
      }
      flightrec_path = argv[++i];
    } else {
      std::printf(
          "usage: %s [--threads N] [--wolves M] [--ticks K] [--explain] "
          "[--lint] [--strict-scripts] [--trace FILE] [--flightrec FILE]\n",
          argv[0]);
      return 2;
    }
  }
  if (!flightrec_path.empty() && threads == 0) {
    std::printf("--flightrec needs the parallel pack mode (--threads N)\n");
    return 2;
  }
  if (lint) return RunLint();
  telemetry::Tracer tracer;
  telemetry::Tracer* tracer_ptr = nullptr;
  if (!trace_path.empty()) {
    tracer.SetEnabled(true);
    tracer_ptr = &tracer;
  }
  if (threads > 0) {
    int rc = RunParallelMode(threads, wolves, ticks, strict, tracer_ptr,
                             flightrec_path);
    if (tracer_ptr != nullptr && rc == 0) rc = WriteTrace(tracer, trace_path);
    return rc;
  }

  World world;

  // Load the content.
  auto prefabs = content::PrefabLibrary::Load(kPrefabs);
  if (!prefabs.ok()) {
    std::printf("prefab error: %s\n", prefabs.status().ToString().c_str());
    return 1;
  }
  auto loot = content::LootTableSet::Load(kLoot);
  if (!loot.ok()) {
    std::printf("loot error: %s\n", loot.status().ToString().c_str());
    return 1;
  }

  // Spawn the scene from templates.
  EntityId hunter = *prefabs->Instantiate(&world, "hunter");
  for (int i = 0; i < 5; ++i) prefabs->Instantiate(&world, "wolf").value();
  prefabs->Instantiate(&world, "alpha_wolf").value();
  std::printf("spawned %zu entities from prefabs (%zu templates)\n",
              world.AliveCount(), prefabs->size());

  // Boot the interpreter with ECS bindings + triggers — and, under
  // --explain, the cost-based planner behind every query builtin.
  planner::PlannerOptions planner_opts;
  planner_opts.telemetry.tracer = tracer_ptr;
  planner::QueryPlanner query_planner(&world, planner_opts);
  script::InterpreterOptions opts;
  opts.restriction = script::Restriction::kNoRecursion;
  script::Interpreter interp(opts);
  script::RegisterCoreBuiltins(&interp);
  script::WorldBindOptions bind;
  if (explain) bind.planner = &query_planner;
  script::BindWorld(&interp, &world, nullptr, bind);
  script::TriggerSystem triggers(&interp);
  triggers.InstallFireBuiltin();

  if (explain) {
    query_planner.Analyze();
    // Per-operator runtime counters for the post-hunt EXPLAIN ANALYZE.
    query_planner.SetCollectRuntime(true);
    std::printf("%s", query_planner.stats().ToString().c_str());
    // The queries the hunt script runs every tick, as the planner sees
    // them: argmin("Health","hp") and the kill handler's count("Health").
    DynamicQuery weakest(&world);
    weakest.SetPlanner(&query_planner).With("Health");
    std::printf("argmin(\"Health\", \"hp\") -> %s",
                weakest.Explain()->c_str());
    DynamicQuery wounded(&world);
    wounded.SetPlanner(&query_planner)
        .WhereField("Health", "hp", CmpOp::kLt, 50.0);
    std::printf("where(\"Health\", \"hp\", \"<\", 50) -> %s",
                wounded.Explain()->c_str());
    DynamicQuery nearby(&world);
    nearby.SetPlanner(&query_planner)
        .WithinRadius("Position", "value", Vec3(0, 0, 0), 10.0f);
    std::printf("within(vec3(0,0,0), 10) -> %s", nearby.Explain()->c_str());
  }

  auto parsed = script::Parse(kHuntScript, kHuntScriptName);
  if (!parsed.ok()) {
    std::printf("parse error: %s\n", parsed.status().ToString().c_str());
    return 1;
  }
  if (strict) {
    // Full static verification (phase safety, schema bindings, cost)
    // before the load — the interpreter alone only runs structure checks.
    script::VerifierOptions vopts;
    vopts.restriction = opts.restriction;
    vopts.is_builtin = [&interp](const std::string& name) {
      return interp.IsBuiltin(name);
    };
    vopts.schema = script::ReflectionSchema();
    script::DiagnosticSink sink;
    script::Verify(*parsed, vopts, &sink);
    if (sink.has_errors()) {
      std::printf("script verification failed:\n%s\n",
                  sink.ToString().c_str());
      return 1;
    }
  }
  if (Status st = interp.Load(std::move(*parsed)); !st.ok()) {
    std::printf("load error: %s\n", st.ToString().c_str());
    return 1;
  }

  // Run the hunt. The wolves don't fight back — it's a loot demo.
  Rng rng(2009);
  const content::LootTable* drops = loot->Find("wolf_drops");
  int kills = 0;
  for (int tick = 0; tick < 100 && world.AliveCount() > 1; ++tick) {
    world.AdvanceTick();
    // Sequential point: refresh stats once the kills drift table sizes
    // past the threshold (this is what invalidates cached plans).
    if (explain) query_planner.MaybeRefreshStats();
    auto alive = interp.Call("hunt_tick", {Value(hunter)});
    if (!alive.ok()) {
      std::printf("script error: %s\n", alive.status().ToString().c_str());
      return 1;
    }
    size_t before = triggers.stats().handled;
    (void)triggers.Pump();
    if (triggers.stats().handled > before) {
      auto drop = drops->Roll(&rng);
      std::printf("  loot: %lld x %s\n",
                  static_cast<long long>(drop.count), drop.item.c_str());
      ++kills;
    }
  }
  for (const std::string& line : interp.output()) {
    std::printf("  [script] %s\n", line.c_str());
  }
  std::printf("hunt over: %d wolves slain across %llu ticks, fuel used %llu\n",
              kills, static_cast<unsigned long long>(world.tick()),
              static_cast<unsigned long long>(interp.total_fuel_used()));
  if (explain) {
    // EXPLAIN ANALYZE: the same plans, now annotated with the runtime row
    // counts the script's own executions recorded — estimated vs actual
    // per operator (shape-matched via the plan cache key).
    DynamicQuery weakest(&world);
    weakest.SetPlanner(&query_planner).With("Health");
    DynamicQuery wounded(&world);
    wounded.SetPlanner(&query_planner)
        .WhereField("Health", "hp", CmpOp::kLt, 50.0);
    auto analyze = [&](const char* label, const DynamicQuery& q) {
      auto text = query_planner.ExplainAnalyzeQuery(q);
      if (text.ok()) std::printf("%s -> %s", label, text->c_str());
    };
    analyze("analyze argmin(\"Health\", \"hp\")", weakest);
    analyze("analyze where(\"Health\", \"hp\", \"<\", 50)", wounded);
    std::printf(
        "planner: %llu plans built, %llu cache hits (replanning per tick "
        "is a hash lookup), %llu stats refreshes\n",
        static_cast<unsigned long long>(query_planner.plan_cache_misses()),
        static_cast<unsigned long long>(query_planner.plan_cache_hits()),
        static_cast<unsigned long long>(query_planner.stats_refreshes()));
  }
  if (tracer_ptr != nullptr) {
    if (int rc = WriteTrace(tracer, trace_path); rc != 0) return rc;
  }
  return kills == 6 ? 0 : 1;
}
