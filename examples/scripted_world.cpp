// Data-driven design end to end: XML prefabs + loot tables + a GSL behavior
// script + event triggers drive a small hunt simulation without a line of
// game-specific C++ logic.
//
//   ./build/examples/scripted_world

#include <cstdio>

#include "content/data_table.h"
#include "content/prefab.h"
#include "script/bindings.h"
#include "script/builtins.h"
#include "script/parser.h"
#include "script/triggers.h"

using namespace gamedb;          // NOLINT
using gamedb::script::Value;

// Designer content: entity templates with inheritance.
constexpr char kPrefabs[] = R"(
<Prefabs>
  <Prefab name="beast">
    <Component type="Health" hp="40" max_hp="40"/>
    <Component type="Position"/>
    <Component type="Faction" team="2"/>
  </Prefab>
  <Prefab name="wolf" extends="beast">
    <Component type="Combat" attack="6" range="2"/>
  </Prefab>
  <Prefab name="alpha_wolf" extends="wolf">
    <Component type="Health" hp="80" max_hp="80"/>
    <Component type="Combat" attack="12" range="2"/>
  </Prefab>
  <Prefab name="hunter">
    <Component type="Health" hp="100" max_hp="100"/>
    <Component type="Position"/>
    <Component type="Faction" team="1"/>
    <Component type="Combat" attack="15" range="5"/>
  </Prefab>
</Prefabs>)";

constexpr char kLoot[] = R"(
<LootTables>
  <LootTable name="wolf_drops">
    <Entry item="pelt" weight="70"/>
    <Entry item="fang" weight="25"/>
    <Entry item="moonstone" weight="5"/>
  </LootTable>
</LootTables>)";

// Designer behavior: the hunter always attacks the weakest living wolf;
// kills fire an event that rolls loot (handled below).
constexpr char kScript[] = R"(
fn hunt_tick(hunter) {
  let prey = argmin("Health", "hp")
  if prey == nil { return false }
  let dmg = get(hunter, "Combat", "attack")
  let hp = get(prey, "Health", "hp") - dmg
  set(prey, "Health", "hp", hp)
  if hp <= 0 {
    fire("killed", prey)
    destroy(prey)
  }
  return true
}

on killed(prey) {
  print("wolf down! remaining:", count("Health") - 1)
}
)";

int main() {
  RegisterStandardComponents();
  World world;

  // Load the content.
  auto prefabs = content::PrefabLibrary::Load(kPrefabs);
  if (!prefabs.ok()) {
    std::printf("prefab error: %s\n", prefabs.status().ToString().c_str());
    return 1;
  }
  auto loot = content::LootTableSet::Load(kLoot);
  if (!loot.ok()) {
    std::printf("loot error: %s\n", loot.status().ToString().c_str());
    return 1;
  }

  // Spawn the scene from templates.
  EntityId hunter = *prefabs->Instantiate(&world, "hunter");
  for (int i = 0; i < 5; ++i) prefabs->Instantiate(&world, "wolf").value();
  prefabs->Instantiate(&world, "alpha_wolf").value();
  std::printf("spawned %zu entities from prefabs (%zu templates)\n",
              world.AliveCount(), prefabs->size());

  // Boot the interpreter with ECS bindings + triggers.
  script::InterpreterOptions opts;
  opts.restriction = script::Restriction::kNoRecursion;
  script::Interpreter interp(opts);
  script::RegisterCoreBuiltins(&interp);
  script::BindWorld(&interp, &world, nullptr);
  script::TriggerSystem triggers(&interp);
  triggers.InstallFireBuiltin();

  auto parsed = script::Parse(kScript, "hunt.gsl");
  if (!parsed.ok()) {
    std::printf("parse error: %s\n", parsed.status().ToString().c_str());
    return 1;
  }
  if (Status st = interp.Load(std::move(*parsed)); !st.ok()) {
    std::printf("load error: %s\n", st.ToString().c_str());
    return 1;
  }

  // Run the hunt. The wolves don't fight back — it's a loot demo.
  Rng rng(2009);
  const content::LootTable* drops = loot->Find("wolf_drops");
  int kills = 0;
  for (int tick = 0; tick < 100 && world.AliveCount() > 1; ++tick) {
    world.AdvanceTick();
    auto alive = interp.Call("hunt_tick", {Value(hunter)});
    if (!alive.ok()) {
      std::printf("script error: %s\n", alive.status().ToString().c_str());
      return 1;
    }
    size_t before = triggers.stats().handled;
    (void)triggers.Pump();
    if (triggers.stats().handled > before) {
      auto drop = drops->Roll(&rng);
      std::printf("  loot: %lld x %s\n",
                  static_cast<long long>(drop.count), drop.item.c_str());
      ++kills;
    }
  }
  for (const std::string& line : interp.output()) {
    std::printf("  [script] %s\n", line.c_str());
  }
  std::printf("hunt over: %d wolves slain across %llu ticks, fuel used %llu\n",
              kills, static_cast<unsigned long long>(world.tick()),
              static_cast<unsigned long long>(interp.total_fuel_used()));
  return kills == 6 ? 0 : 1;
}
