// WoW-style data-driven UI: parse a player-authored XML layout, validate it
// against a schema, resolve anchors into pixel rects, and hit-test a few
// clicks — the tutorial's canonical user-generated-content pipeline.
//
//   ./build/examples/ui_inspector

#include <cstdio>

#include "content/schema.h"
#include "content/ui_layout.h"

using namespace gamedb;           // NOLINT
using namespace gamedb::content;  // NOLINT

constexpr char kPlayerUi[] = R"(
<Ui width="1280" height="720">
  <!-- a player's custom raid HUD -->
  <Frame name="action_bar" width="600" height="64" anchor="BOTTOM" y="-8">
    <Frame name="slot_1" width="56" height="56" anchor="LEFT" x="6"/>
    <Frame name="slot_2" width="56" height="56" anchor="LEFT" x="68"/>
  </Frame>
  <Frame name="player_frame" width="240" height="80" anchor="TOPLEFT"
         x="16" y="16">
    <Frame name="hp_bar" width="220" height="24" anchor="TOP" y="10"/>
    <Frame name="mana_bar" width="220" height="16" anchor="BOTTOM" y="-10"/>
  </Frame>
  <Frame name="minimap" width="180" height="180" anchor="TOPRIGHT"
         x="-12" y="12"/>
  <Frame name="raid_warning" width="500" height="40" anchor="CENTER"
         y="-200"/>
</Ui>)";

int main() {
  // Schema: what the engine permits addon authors to write.
  Schema schema;
  schema.Element("Ui")
      .RequiredAttr("width", AttrType::kNumber)
      .RequiredAttr("height", AttrType::kNumber)
      .Child("Frame");
  schema.Element("Frame")
      .RequiredAttr("name", AttrType::kString)
      .RequiredAttr("width", AttrType::kNumber)
      .RequiredAttr("height", AttrType::kNumber)
      .OptionalAttr("anchor", AttrType::kString)
      .OptionalAttr("x", AttrType::kNumber)
      .OptionalAttr("y", AttrType::kNumber)
      .Child("Frame");

  auto doc = ParseXml(kPlayerUi);
  if (!doc.ok()) {
    std::printf("parse error: %s\n", doc.status().ToString().c_str());
    return 1;
  }
  if (Status st = schema.Validate(**doc); !st.ok()) {
    std::printf("schema violation: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("schema: OK\n");

  auto layout = UiLayout::Load(kPlayerUi);
  if (!layout.ok()) {
    std::printf("layout error: %s\n", layout.status().ToString().c_str());
    return 1;
  }
  std::printf("resolved %zu frames on a %.0fx%.0f screen:\n",
              layout->FrameCount(), layout->root().width,
              layout->root().height);
  for (const char* name :
       {"action_bar", "slot_1", "slot_2", "player_frame", "hp_bar",
        "mana_bar", "minimap", "raid_warning"}) {
    auto rect = layout->RectOf(name);
    std::printf("  %-14s x=%7.1f y=%7.1f w=%6.1f h=%6.1f\n", name, rect->x,
                rect->y, rect->width, rect->height);
  }

  std::printf("hit tests:\n");
  struct Click {
    float x, y;
  } clicks[] = {{30, 40}, {126, 40}, {1200, 100}, {640, 700}, {640, 360}};
  for (const Click& c : clicks) {
    std::string hit = layout->HitTest(c.x, c.y);
    std::printf("  (%6.1f, %6.1f) -> %s\n", c.x, c.y,
                hit.empty() ? "<world>" : hit.c_str());
  }
  return 0;
}
