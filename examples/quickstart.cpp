// Quickstart: the gamedb core loop in ~100 lines.
//
// Creates a world, registers components, runs declarative queries and a
// maintained aggregate, executes one parallel state-effect combat tick, and
// takes a snapshot — the five things every other example builds on.
//
//   ./build/examples/quickstart

#include <cstdio>

#include "core/aggregate.h"
#include "core/query.h"
#include "core/serialize.h"
#include "core/state_effect.h"

using namespace gamedb;  // NOLINT

int main() {
  RegisterStandardComponents();
  World world;

  // --- Populate: 8 fighters on two teams -------------------------------
  std::vector<EntityId> fighters;
  for (int i = 0; i < 8; ++i) {
    EntityId e = world.Create();
    fighters.push_back(e);
    world.Set(e, Position{{float(i) * 4.0f, 0, 0}});
    world.Set(e, Health{float(60 + 5 * i), 100});
    world.Set(e, Faction{i % 2});
    Combat c;
    c.attack = float(8 + i);
    c.target = EntityId();  // assigned below
    world.Set(e, c);
  }
  // Everyone targets the next fighter on the other team.
  for (int i = 0; i < 8; ++i) {
    world.Patch<Combat>(fighters[size_t(i)], [&](Combat& c) {
      c.target = fighters[size_t((i + 1) % 8)];
    });
  }
  std::printf("world: %zu entities\n", world.AliveCount());

  // --- Declarative queries ----------------------------------------------
  DynamicQuery wounded(&world);
  wounded.WhereField("Health", "hp", CmpOp::kLt, 75.0);
  std::printf("wounded (hp < 75): %lld\n",
              static_cast<long long>(*wounded.Count()));

  DynamicQuery team0(&world);
  team0.WhereField("Faction", "team", CmpOp::kEq, int64_t{0});
  std::printf("team 0 total hp: %.1f\n", *team0.Sum("Health", "hp"));

  DynamicQuery near_origin(&world);
  near_origin.WithinRadius("Position", "value", Vec3(0, 0, 0), 10.0f);
  std::printf("entities within 10 of origin: %lld\n",
              static_cast<long long>(*near_origin.Count()));

  // --- Maintained aggregate: updates in O(1) per tracked write ----------
  SumAggregate<Health> total_hp(world, [](const Health& h) { return h.hp; });
  std::printf("total hp (maintained): %.1f\n", total_hp.sum());

  // --- One parallel state-effect combat tick ----------------------------
  StateEffectExecutor exec(4);
  Effect<double> damage(exec.shard_count());
  exec.QueryPhase<Combat>(world, [&](size_t shard, EntityId, const Combat& c) {
    damage.Contribute(shard, c.target, double(c.attack));
  });
  damage.Drain([&](EntityId e, const double& total) {
    world.Patch<Health>(e, [&](Health& h) { h.hp -= float(total); });
  });
  world.AdvanceTick();
  std::printf("after combat tick: total hp = %.1f (tick %llu)\n",
              total_hp.sum(), static_cast<unsigned long long>(world.tick()));

  // --- Snapshot round trip ----------------------------------------------
  std::string snapshot;
  EncodeWorldSnapshot(world, &snapshot);
  World restored;
  Status st = DecodeWorldSnapshot(snapshot, &restored);
  std::printf("snapshot: %zu bytes, restore: %s, entities: %zu\n",
              snapshot.size(), st.ToString().c_str(), restored.AliveCount());
  return st.ok() ? 0 : 1;
}
