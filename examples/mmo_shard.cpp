// A miniature MMO shard tick loop: causality-bubble transaction execution,
// interest-managed client replication, intelligent checkpointing — then a
// simulated crash and recovery. The systems-integration example.
//
//   ./build/examples/mmo_shard
//   ./build/examples/mmo_shard --interest-view   # LiveView-backed interest
//
// With --interest-view, client replication reads each client's
// incrementally-maintained interest LiveView (ViewCatalog + cost-based
// planner) instead of rescanning the Position table per client — the
// kInterestView configuration the scenario harness (tools/loadgen) runs at
// scale.

#include <cstdio>
#include <cstring>
#include <memory>

#include "persist/manager.h"
#include "planner/planner.h"
#include "replication/divergence.h"
#include "replication/sync.h"
#include "txn/bubbles.h"
#include "txn/workload.h"
#include "views/maintainer.h"

using namespace gamedb;  // NOLINT

int main(int argc, char** argv) {
  bool interest_view = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--interest-view") == 0) {
      interest_view = true;
    } else {
      std::printf("usage: %s [--interest-view]\n", argv[0]);
      return 1;
    }
  }
  // --- World ------------------------------------------------------------
  txn::WorkloadOptions wopts;
  wopts.num_entities = 800;
  wopts.area_extent = 600.0f;
  wopts.attack_fraction = 0.5f;
  wopts.trade_fraction = 0.2f;
  wopts.clustered_fraction = 0.25f;  // a town square hotspot
  txn::MmoWorkload workload(wopts);
  World& world = workload.world();
  std::printf("shard up: %zu entities, %.0f x %.0f map\n", world.AliveCount(),
              wopts.area_extent, wopts.area_extent);

  // --- Subsystems ---------------------------------------------------------
  txn::BubbleOptions bopts;
  bopts.interaction_radius = wopts.interaction_radius;
  bopts.horizon_seconds = 0.5f;
  bopts.repartition_interval = 10;
  txn::BubbleExecutor executor(bopts);
  ThreadPool pool(4);

  // Interest replication: per-client Position rescan by default, or (with
  // --interest-view) a planner-executed LiveView per client, recentered as
  // its avatar moves. Planner + catalog must outlive the sync server.
  std::unique_ptr<planner::QueryPlanner> planner;
  std::unique_ptr<views::ViewCatalog> catalog;
  replication::SyncOptions sopts;
  sopts.interest_radius = 80.0f;
  if (interest_view) {
    planner = std::make_unique<planner::QueryPlanner>(&world);
    planner->Analyze();
    catalog = std::make_unique<views::ViewCatalog>(&world, planner.get());
    sopts.strategy = replication::SyncStrategy::kInterestView;
    sopts.view_catalog = catalog.get();
    std::printf("interest mode: LiveView (catalog + cost-based planner)\n");
  } else {
    sopts.strategy = replication::SyncStrategy::kInterest;
    std::printf("interest mode: per-client rescan\n");
  }
  replication::SyncServer sync(&world, sopts);
  sync.AddClient(workload.entities()[0]);
  sync.AddClient(workload.entities()[400]);

  persist::MemStorage storage;
  persist::PersistenceManager persistence(
      &storage,
      std::make_unique<persist::HybridPolicy>(/*max_interval=*/50,
                                              /*accumulate=*/80.0,
                                              /*urgent=*/40.0));
  Rng rng(77);

  // --- The tick loop ------------------------------------------------------
  uint64_t sync_bytes = 0;
  std::vector<replication::SyncStats> sync_stats;
  for (int tick = 1; tick <= 120; ++tick) {
    world.AdvanceTick();

    // 1. Execute this tick's player actions under bubble isolation.
    auto batch = workload.NextBatch();
    txn::ExecStats stats = executor.ExecuteBatch(&world, batch, &pool);

    // 2. Game events feed the checkpoint policy.
    if (rng.NextBool(0.03)) {
      persistence.OnEvent(world.tick(), 50.0, "boss_kill").ok();
    } else if (rng.NextBool(0.3)) {
      persistence.OnEvent(world.tick(), 1.0, "quest_step").ok();
    }

    // 3. Replicate to the connected clients.
    if (!sync.SyncAll(&sync_stats).ok()) return 1;
    for (const auto& s : sync_stats) sync_bytes += s.bytes_sent;

    // 4. Maybe checkpoint.
    auto ckpt = persistence.OnTickEnd(world);
    if (!ckpt.ok()) return 1;

    workload.AdvancePositions(0.05f);
    if (tick % 30 == 0) {
      std::printf(
          "tick %3d | txns %llu (cross %llu, bubbles %llu, max %llu) | "
          "ckpts %llu | pending importance %.1f\n",
          tick, static_cast<unsigned long long>(stats.committed),
          static_cast<unsigned long long>(stats.cross_bubble_txns),
          static_cast<unsigned long long>(stats.bubble_count),
          static_cast<unsigned long long>(stats.max_bubble_size),
          static_cast<unsigned long long>(persistence.metrics().checkpoints),
          persistence.pending_importance());
    }
  }

  auto divergence =
      replication::MeasureDivergence(world, sync.client(0).world());
  std::printf(
      "replication: %.1f KB total, client-0 rmse %.3f over %zu shared "
      "entities\n",
      double(sync_bytes) / 1024.0, divergence.position_rmse,
      divergence.compared);

  // --- Crash! ------------------------------------------------------------
  double hp_at_crash = workload.TotalHp();
  int64_t gold_at_crash = workload.TotalGold();
  std::printf("CRASH at tick %llu (total hp %.0f, gold %lld)\n",
              static_cast<unsigned long long>(world.tick()), hp_at_crash,
              static_cast<long long>(gold_at_crash));

  World recovered;
  auto outcome = persist::PersistenceManager::Recover(storage, &recovered);
  if (!outcome.ok()) {
    std::printf("recovery failed: %s\n",
                outcome.status().ToString().c_str());
    return 1;
  }
  double hp_recovered = 0;
  recovered.ForEachEntity([&](EntityId e) {
    if (const Health* h = recovered.Get<Health>(e)) hp_recovered += h->hp;
  });
  std::printf(
      "recovered to tick %llu from checkpoint@%llu (replayed %llu txns): "
      "%zu entities, total hp %.0f\n",
      static_cast<unsigned long long>(outcome->recovered_tick),
      static_cast<unsigned long long>(outcome->checkpoint_tick),
      static_cast<unsigned long long>(outcome->replayed_txns),
      recovered.AliveCount(), hp_recovered);
  std::printf("post-crash progress lost: ticks %llu..%llu\n",
              static_cast<unsigned long long>(outcome->recovered_tick + 1),
              static_cast<unsigned long long>(world.tick()));
  return recovered.AliveCount() == world.AliveCount() ? 0 : 1;
}
